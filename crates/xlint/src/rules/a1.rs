//! Rules A1/A2 — atomic memory-ordering discipline.
//!
//! **A1**: a `Relaxed` *store-side* operation (`store`, `swap`, the
//! success ordering of `compare_exchange[_weak]` / `fetch_update`) on an
//! atomic field that more than one function touches is a publish with no
//! release fence — readers in another thread may observe the value
//! without the writes that preceded it. Fields only ever touched from
//! one function (true thread-private scratch) are exempt; the failure
//! ordering of a compare-exchange is a load and is exempt by
//! construction. Arithmetic RMWs (`fetch_add`, `fetch_max`, …) are
//! exempt *unless* some other site on the same field uses a
//! synchronizing ordering: RMWs on one atomic always read the latest
//! value in the field's single modification order, so `Relaxed` is
//! correct for pure statistics counters — but a field somebody
//! `Acquire`s is a synchronization point, and then every write side
//! must pair up.
//!
//! **A2**: a `store`/`load` pair on the same atomic field with
//! *asymmetric* orderings — `Release`/`SeqCst` stores read by `Relaxed`
//! loads (the acquire half is missing), or `Acquire`/`SeqCst` loads of a
//! field only ever stored `Relaxed` (the release half is missing).
//! Either way one side paid for synchronization the other side throws
//! away.
//!
//! Approximation direction: sites are recognised only when an explicit
//! `Ordering::X` literal appears in the argument list, and field
//! identity is per-file (`self.field` receivers collapse by final field
//! name, mirroring the lock-identity rule). Orderings passed through
//! variables and cross-file access patterns are missed —
//! under-approximate, so every finding is real enough to review; the
//! sanitizer CI matrix (Miri/TSan) covers the dynamic remainder.

use super::{is_punct, Violation};
use crate::lexer::TokenKind;
use crate::parser::{parse_file, receiver_chain};
use crate::source::SourceFile;

/// Store-side atomics taking a single ordering that governs the write.
/// `store`/`swap` are publish-shaped and always held to A1; the
/// `fetch_*` arithmetic RMWs are counter-shaped and only held to A1 when
/// the field is also accessed with a synchronizing ordering.
const RMW_METHODS: &[&str] = &[
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
];
/// Store-side atomics taking `(success/set, failure/fetch)` orderings —
/// only the *first* governs the write.
const CMPXCHG_METHODS: &[&str] = &["compare_exchange", "compare_exchange_weak", "fetch_update"];

const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// One recognised atomic operation.
struct AtomicSite {
    /// Per-file field identity (`self.epoch`, `f.local`).
    field: String,
    method: String,
    /// `Ordering::X` literals in argument order.
    orderings: Vec<String>,
    line: u32,
    /// Enclosing fn name (A1's "how many fns touch this field" count).
    fn_name: String,
}

impl AtomicSite {
    fn is_load(&self) -> bool {
        self.method == "load"
    }

    /// The ordering governing the write, for store-side ops.
    fn store_ordering(&self) -> Option<&str> {
        if self.is_load() {
            return None;
        }
        self.orderings.first().map(String::as_str)
    }

    fn load_ordering(&self) -> Option<&str> {
        if !self.is_load() {
            return None;
        }
        self.orderings.first().map(String::as_str)
    }
}

fn is_sync(ordering: &str) -> bool {
    matches!(ordering, "Acquire" | "Release" | "AcqRel" | "SeqCst")
}

/// Scans `sf` for atomic operations with explicit `Ordering::X`
/// arguments. The ordering literal requirement is the gate that keeps
/// `.load(key)` on a non-atomic receiver out.
fn collect_sites(sf: &SourceFile) -> Vec<AtomicSite> {
    let toks = &sf.tokens;
    let parsed = parse_file(sf, "crate");
    let mut out = Vec::new();
    for j in 0..toks.len() {
        if sf.test_mask[j] || toks[j].text != "." {
            continue;
        }
        let Some(name) = toks.get(j + 1) else {
            continue;
        };
        let method = name.text.as_str();
        if name.kind != TokenKind::Ident
            || !(method == "load"
                || RMW_METHODS.contains(&method)
                || CMPXCHG_METHODS.contains(&method))
            || toks.get(j + 2).is_none_or(|t| t.text != "(")
        {
            continue;
        }
        // Walk the argument group collecting `Ordering::X` literals.
        let mut orderings = Vec::new();
        let mut depth = 0i32;
        let mut k = j + 2;
        while k < toks.len() {
            match toks[k].text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {
                    if toks[k].kind == TokenKind::Ident
                        && ORDERINGS.contains(&toks[k].text.as_str())
                        && k >= 2
                        && is_punct(toks, k - 1, ":")
                        && is_punct(toks, k - 2, ":")
                    {
                        orderings.push(toks[k].text.clone());
                    }
                }
            }
            k += 1;
        }
        if orderings.is_empty() {
            continue; // not an atomic op (or ordering not literal) — skip
        }
        let line = name.line;
        let fn_name = parsed
            .fns
            .iter()
            .filter(|f| f.line <= line && line <= f.end_line)
            .max_by_key(|f| f.line)
            .map(|f| f.name.clone())
            .unwrap_or_else(|| "<module scope>".into());
        let chain = receiver_chain(toks, j);
        let field = if chain.first().is_some_and(|s| s == "self") && chain.len() >= 2 {
            format!("self.{}", chain.last().expect("len >= 2"))
        } else if chain.is_empty() {
            format!("{fn_name}.<expr>")
        } else {
            format!("{fn_name}.{}", chain.join("."))
        };
        out.push(AtomicSite {
            field,
            method: method.to_string(),
            orderings,
            line,
            fn_name,
        });
    }
    out
}

pub fn check_a1(sf: &SourceFile) -> Vec<Violation> {
    let sites = collect_sites(sf);
    let mut out = Vec::new();
    for s in &sites {
        if s.store_ordering() != Some("Relaxed") {
            continue;
        }
        let peers: Vec<&AtomicSite> = sites.iter().filter(|o| o.field == s.field).collect();
        let mut fns: Vec<&str> = peers.iter().map(|o| o.fn_name.as_str()).collect();
        fns.sort_unstable();
        fns.dedup();
        if fns.len() < 2 {
            continue; // single-fn scratch — not a cross-thread publish
        }
        // Counter-shaped RMWs stay Relaxed unless the field is a
        // synchronization point (some site acquires/releases on it).
        let counter_shaped = s.method.starts_with("fetch_") && s.method != "fetch_update";
        let field_synchronizes = peers
            .iter()
            .any(|o| o.orderings.iter().any(|ord| is_sync(ord)));
        if counter_shaped && !field_synchronizes {
            continue;
        }
        out.push(Violation::new(
            "A1",
            sf,
            s.line,
            format!(
                "Relaxed `{}` on atomic `{}` (touched by {}) publishes with no release fence — \
                 use Release/AcqRel, or add an audited allow for a pure statistics counter",
                s.method,
                s.field,
                fns.join(", "),
            ),
        ));
    }
    out
}

pub fn check_a2(sf: &SourceFile) -> Vec<Violation> {
    let sites = collect_sites(sf);
    let mut fields: Vec<&str> = sites.iter().map(|s| s.field.as_str()).collect();
    fields.sort_unstable();
    fields.dedup();
    let mut out = Vec::new();
    for field in fields {
        let stores: Vec<&AtomicSite> = sites
            .iter()
            .filter(|s| s.field == field && s.method == "store")
            .collect();
        let loads: Vec<&AtomicSite> = sites
            .iter()
            .filter(|s| s.field == field && s.is_load())
            .collect();
        let any_sync_store = stores
            .iter()
            .any(|s| s.store_ordering().is_some_and(is_sync));
        let any_sync_load = loads.iter().any(|s| s.load_ordering().is_some_and(is_sync));
        if any_sync_store {
            for l in loads
                .iter()
                .filter(|l| l.load_ordering() == Some("Relaxed"))
            {
                out.push(Violation::new(
                    "A2",
                    sf,
                    l.line,
                    format!(
                        "Relaxed load of atomic `{field}` that is stored with a release ordering \
                         elsewhere in this file — the acquire half of the pairing is missing"
                    ),
                ));
            }
        } else if any_sync_load && !stores.is_empty() {
            for s in stores
                .iter()
                .filter(|s| s.store_ordering() == Some("Relaxed"))
            {
                out.push(Violation::new(
                    "A2",
                    sf,
                    s.line,
                    format!(
                        "Relaxed store to atomic `{field}` that is loaded with an acquire ordering \
                         elsewhere in this file — the release half of the pairing is missing"
                    ),
                ));
            }
        }
    }
    out.sort_by_key(|v| v.line);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn file(src: &str) -> SourceFile {
        SourceFile::from_source(Path::new("crates/d/src/lib.rs"), src)
    }

    #[test]
    fn relaxed_publish_across_fns_is_flagged() {
        let v = check_a1(&file(
            "impl C {\n\
             fn bump(&self) { self.epoch.store(1, Ordering::Relaxed); }\n\
             fn read(&self) -> u64 { self.epoch.load(Ordering::Acquire) }\n\
             }\n",
        ));
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("self.epoch"), "{}", v[0].message);
    }

    #[test]
    fn single_fn_counter_and_release_store_pass() {
        let v = check_a1(&file(
            "impl C {\n\
             fn only(&self) { self.n.fetch_add(1, Ordering::Relaxed); let _x = self.n.load(Ordering::Relaxed); }\n\
             fn pubd(&self) { self.e.store(1, Ordering::Release); }\n\
             fn rd(&self) -> u64 { self.e.load(Ordering::Acquire) }\n\
             }\n",
        ));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn all_relaxed_counters_are_exempt_until_somebody_synchronizes() {
        // fetch_add + Relaxed load across fns: a pure statistics counter.
        let v = check_a1(&file(
            "impl C {\n\
             fn hit(&self) { self.hits.fetch_add(1, Ordering::Relaxed); }\n\
             fn snapshot(&self) -> u64 { self.hits.load(Ordering::Relaxed) }\n\
             }\n",
        ));
        assert!(v.is_empty(), "{v:?}");
        // The same counter read with Acquire is a synchronization point —
        // now the Relaxed bump is the missing release half.
        let v = check_a1(&file(
            "impl C {\n\
             fn bump(&self) { self.seq.fetch_add(1, Ordering::Relaxed); }\n\
             fn wait(&self) -> u64 { self.seq.load(Ordering::Acquire) }\n\
             }\n",
        ));
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn cmpxchg_failure_ordering_is_exempt() {
        let v = check_a1(&file(
            "impl C {\n\
             fn cas(&self) { self.s.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Relaxed); }\n\
             fn rd(&self) -> u64 { self.s.load(Ordering::Acquire) }\n\
             }\n",
        ));
        assert!(v.is_empty(), "failure ordering is a load: {v:?}");
    }

    #[test]
    fn asymmetric_store_load_pair_is_flagged() {
        let v = check_a2(&file(
            "impl C {\n\
             fn w(&self) { self.seq.store(1, Ordering::Release); }\n\
             fn r(&self) -> u64 { self.seq.load(Ordering::Relaxed) }\n\
             }\n",
        ));
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("acquire half"), "{}", v[0].message);
        let v = check_a2(&file(
            "impl C {\n\
             fn w(&self) { self.seq.store(1, Ordering::Relaxed); }\n\
             fn r(&self) -> u64 { self.seq.load(Ordering::Acquire) }\n\
             }\n",
        ));
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("release half"), "{}", v[0].message);
    }

    #[test]
    fn symmetric_pairs_and_non_atomics_pass() {
        let v = check_a2(&file(
            "impl C {\n\
             fn w(&self, m: &Map) { self.seq.store(1, Ordering::Release); m.store(k, v); }\n\
             fn r(&self) -> u64 { self.seq.load(Ordering::Acquire) }\n\
             }\n",
        ));
        assert!(v.is_empty(), "{v:?}");
    }
}
