//! CLI driver: `cargo run -p xlint -- [--check|--update-baseline|--audit]`.

use std::path::PathBuf;
use std::process::ExitCode;

use xlint::config::Config;
use xlint::{build_graphs, find_root, lint_workspace, LintReport};

const USAGE: &str = "\
xlint — workspace lint pass for determinism, panic-safety and lock discipline

USAGE:
    cargo run -p xlint -- [OPTIONS]

OPTIONS:
    --check              Fail (exit 1) on violations exceeding the baseline
                         in xlint.toml. This is the CI entry point. (Default
                         behaviour when no mode is given.)
    --update-baseline    Rewrite the [[baseline]] section of xlint.toml to
                         match the current tree.
    --audit              Print the table of inline `xlint: allow(...)`
                         suppressions with their reasons, and the P2
                         burn-down table (panic sites ranked by how many
                         pub APIs can reach them).
    --graph <call|lock|unsafe>
                         Print the whole-workspace call or lock graph as
                         Graphviz DOT — or, for `unsafe`, the unsafe-audit
                         markdown (redirect to docs/unsafe_audit.md) — on
                         stdout and exit.
    --format <fmt>       Output format for --check: `text` (default) or
                         `json` (machine-readable, one object on stdout).
    --root <PATH>        Workspace root (default: nearest ancestor with an
                         xlint.toml).
    --help               This text.
";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    let mut update_baseline = false;
    let mut audit_only = false;
    let mut graph: Option<String> = None;
    let mut json = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => {}
            "--update-baseline" => update_baseline = true,
            "--audit" => audit_only = true,
            "--graph" => match args.next() {
                Some(g) if g == "call" || g == "lock" || g == "unsafe" => graph = Some(g),
                _ => return usage_error("--graph needs `call`, `lock` or `unsafe`"),
            },
            "--format" => match args.next().as_deref() {
                Some("text") => {}
                Some("json") => json = true,
                _ => return usage_error("--format needs `text` or `json`"),
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage_error("--root needs a path"),
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root.or_else(|| std::env::current_dir().ok().and_then(|d| find_root(&d))) {
        Some(r) => r,
        None => return usage_error("no xlint.toml found here or above; pass --root"),
    };

    if let Some(which) = graph {
        if which == "unsafe" {
            return match xlint::unsafe_scan::workspace_sites(&root) {
                Ok(sites) => {
                    print!("{}", xlint::unsafe_scan::render_markdown(&sites));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("xlint: {e}");
                    ExitCode::from(2)
                }
            };
        }
        let (cg, lg) = match build_graphs(&root) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("xlint: {e}");
                return ExitCode::from(2);
            }
        };
        match which.as_str() {
            "call" => print!("{}", cg.to_dot()),
            _ => print!("{}", lg.to_dot()),
        }
        return ExitCode::SUCCESS;
    }
    let cfg_path = root.join("xlint.toml");
    let cfg = match Config::load(&cfg_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("xlint: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match lint_workspace(&root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xlint: {e}");
            return ExitCode::from(2);
        }
    };

    if audit_only {
        print_audit(&report);
        return ExitCode::SUCCESS;
    }

    if update_baseline {
        let existing = match std::fs::read_to_string(&cfg_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("xlint: reading {}: {e}", cfg_path.display());
                return ExitCode::from(2);
            }
        };
        let rendered = Config::render_with_baseline(&existing, &report.fresh_baseline());
        if let Err(e) = std::fs::write(&cfg_path, rendered) {
            eprintln!("xlint: writing {}: {e}", cfg_path.display());
            return ExitCode::from(2);
        }
        println!(
            "xlint: baseline updated — {} grandfathered violation(s) across {} (rule, file) pair(s)",
            report.violations.len(),
            report.fresh_baseline().len()
        );
        return ExitCode::SUCCESS;
    }

    // --check (and default): report against the baseline.
    if json {
        print!("{}", render_json(&report));
        return if report.regressions.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    print_audit(&report);
    for imp in &report.improvements {
        println!(
            "xlint: baseline stale (improved): {} {} {} -> {} — run --update-baseline to burn it down",
            imp.rule, imp.file, imp.baseline, imp.actual
        );
    }
    if report.regressions.is_empty() {
        println!(
            "xlint: clean — {} file(s), {} grandfathered violation(s) in baseline, {} inline allow(s)",
            report.files_scanned,
            report.violations.len(),
            report.suppressed.len()
        );
        ExitCode::SUCCESS
    } else {
        let mut n_new = 0usize;
        for reg in &report.regressions {
            eprintln!(
                "xlint: {}: {} violation(s) vs {} in baseline ({})",
                reg.rule, reg.actual, reg.baseline, reg.file
            );
            for v in &reg.violations {
                eprintln!("  {}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
            }
            n_new += reg.actual - reg.baseline;
        }
        eprintln!(
            "xlint: FAILED — {n_new} new violation(s) above the baseline; fix them, add a \
             justified `// xlint: allow(<rule>, reason = \"…\")`, or (for deliberate \
             grandfathering) run --update-baseline"
        );
        ExitCode::FAILURE
    }
}

fn print_audit(report: &LintReport) {
    if !report.suppressed.is_empty() {
        println!("xlint: inline suppressions (audit):");
        println!("  {:<4} {:<52} reason", "rule", "location");
        for s in &report.suppressed {
            let loc = format!("{}:{}", s.violation.file, s.violation.line);
            println!(
                "  {:<4} {:<52} {}",
                s.violation.rule,
                loc,
                s.reason.as_deref().unwrap_or("(none given)")
            );
        }
    }
    if !report.burndown.is_empty() {
        println!("xlint: P1 burn-down priorities (pub APIs that can reach each panic site):");
        println!("  {:<7} {:<44} in fn", "pub-fan", "site");
        for b in &report.burndown {
            let loc = format!("{}:{}", b.file, b.line);
            println!("  {:<7} {:<44} {}", b.pub_apis, loc, b.fn_label);
        }
    }
}

/// Minimal JSON escaping — control chars, quotes and backslashes.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Machine-readable `--check` output: overall status, every regression's
/// violations (the actionable set), and the stale-baseline list.
fn render_json(report: &LintReport) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"status\": {},\n",
        json_str(if report.regressions.is_empty() {
            "clean"
        } else {
            "failed"
        })
    ));
    out.push_str(&format!(
        "  \"files_scanned\": {},\n  \"grandfathered\": {},\n  \"suppressed\": {},\n",
        report.files_scanned,
        report.violations.len(),
        report.suppressed.len()
    ));
    out.push_str("  \"new_violations\": [");
    let mut first = true;
    for reg in &report.regressions {
        for v in &reg.violations {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
                json_str(v.rule),
                json_str(&v.file),
                v.line,
                json_str(&v.message)
            ));
        }
    }
    out.push_str(if first { "],\n" } else { "\n  ],\n" });
    out.push_str("  \"stale_baseline\": [");
    first = true;
    for imp in &report.improvements {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"file\": {}, \"baseline\": {}, \"actual\": {}}}",
            json_str(&imp.rule),
            json_str(&imp.file),
            imp.baseline,
            imp.actual
        ));
    }
    out.push_str(if first { "]\n" } else { "\n  ]\n" });
    out.push_str("}\n");
    out
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("xlint: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}
