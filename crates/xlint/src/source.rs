//! A lexed source file plus the derived facts every rule needs: which lines
//! are test-only code, which lines carry `xlint: allow(...)` directives, and
//! which workspace-crate names the file imports.

use std::path::{Path, PathBuf};

use crate::lexer::{lex, Comment, Token, TokenKind};

/// An inline suppression: `// xlint: allow(p1, reason = "…")`.
///
/// A directive suppresses matching violations on its own line and on the
/// next source line (so it can trail the offending expression or sit on the
/// line above it, whichever rustfmt prefers).
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// Rule id, upper-cased (`"D1"`, `"P1"`, …).
    pub rule: String,
    pub reason: Option<String>,
    pub line: u32,
}

/// One parsed source file, ready for the rule visitors.
pub struct SourceFile {
    /// Path relative to the workspace root (`crates/gnn/src/model.rs`).
    pub rel_path: PathBuf,
    pub tokens: Vec<Token>,
    pub allows: Vec<AllowDirective>,
    /// `test_mask[i]` — token `i` sits inside `#[cfg(test)]` / `#[test]`
    /// gated code and is invisible to every rule.
    pub test_mask: Vec<bool>,
    /// Leaf names this file imports from workspace crates
    /// (`use xfraud_gnn::{predict_scores, Sampler}` → both names), plus the
    /// crate names themselves (`xfraud_gnn`).
    pub workspace_imports: Vec<String>,
    /// Every comment with its line span — rule U1 reads `// SAFETY:`
    /// justifications adjacent to `unsafe` sites out of these.
    pub comments: Vec<Comment>,
}

impl SourceFile {
    pub fn parse(root: &Path, rel_path: &Path) -> std::io::Result<SourceFile> {
        let src = std::fs::read_to_string(root.join(rel_path))?;
        Ok(SourceFile::from_source(rel_path, &src))
    }

    /// Parses from an in-memory string — the fixture-test entry point.
    pub fn from_source(rel_path: &Path, src: &str) -> SourceFile {
        let lexed = lex(src);
        let test_mask = compute_test_mask(&lexed.tokens);
        let allows = collect_allows(&lexed.comments);
        let workspace_imports = collect_workspace_imports(&lexed.tokens);
        SourceFile {
            rel_path: rel_path.to_path_buf(),
            tokens: lexed.tokens,
            allows,
            test_mask,
            workspace_imports,
            comments: lexed.comments,
        }
    }

    /// Is a violation of `rule` at `line` suppressed by an allow directive?
    pub fn allowed(&self, rule: &str, line: u32) -> Option<&AllowDirective> {
        self.allows
            .iter()
            .find(|a| a.rule == rule && (a.line == line || a.line + 1 == line))
    }
}

/// Marks tokens inside `#[cfg(test)]`- or `#[test]`-gated items. The scan
/// finds the attribute, then masks up to the end of the item's brace block
/// (or, for `#[cfg(test)] use …;`, the terminating semicolon).
fn compute_test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if let Some(after_attr) = match_test_attribute(tokens, i) {
            // Find the item body: the first `{` before a `;` ends the item.
            let mut j = after_attr;
            let mut item_end = None;
            while j < tokens.len() {
                match tokens[j].text.as_str() {
                    ";" => {
                        item_end = Some(j);
                        break;
                    }
                    "{" => {
                        let open_depth = tokens[j].brace_depth;
                        let mut k = j + 1;
                        while k < tokens.len() {
                            if tokens[k].text == "}" && tokens[k].brace_depth == open_depth {
                                break;
                            }
                            k += 1;
                        }
                        item_end = Some(k.min(tokens.len() - 1));
                        break;
                    }
                    _ => j += 1,
                }
            }
            let end = item_end.unwrap_or(tokens.len() - 1);
            for m in mask.iter_mut().take(end + 1).skip(i) {
                *m = true;
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// If tokens at `i` start `#[test]`, `#[cfg(test)]` or a `cfg(test, …)` /
/// `cfg(any(test, …))` variant, returns the index just past the closing `]`.
fn match_test_attribute(tokens: &[Token], i: usize) -> Option<usize> {
    if tokens.get(i)?.text != "#" || tokens.get(i + 1)?.text != "[" {
        return None;
    }
    // Collect tokens to the matching `]` (attributes never nest brackets
    // deeply in this workspace; track bracket depth anyway).
    let mut j = i + 2;
    let mut depth = 1u32;
    let mut words: Vec<&str> = Vec::new();
    while j < tokens.len() && depth > 0 {
        match tokens[j].text.as_str() {
            "[" => depth += 1,
            "]" => depth -= 1,
            _ => {
                if tokens[j].kind == TokenKind::Ident {
                    words.push(&tokens[j].text);
                }
            }
        }
        j += 1;
    }
    let is_test = match words.as_slice() {
        ["test"] => true,
        [first, rest @ ..] if *first == "cfg" => rest.contains(&"test"),
        _ => false,
    };
    is_test.then_some(j)
}

/// Extracts `xlint: allow(rule, reason = "…")` directives from comments.
/// Multi-line block comments attribute the directive to their *last* line,
/// matching the "directive covers the next line" convention.
fn collect_allows(comments: &[Comment]) -> Vec<AllowDirective> {
    let mut out = Vec::new();
    for c in comments {
        let mut rest = c.text.as_str();
        while let Some(at) = rest.find("xlint: allow(") {
            let args_start = at + "xlint: allow(".len();
            let tail = &rest[args_start..];
            // The rule id runs to the first `,` (a reason follows) or `)`.
            let Some(rule_end) = tail.find([',', ')']) else {
                break;
            };
            let rule = tail[..rule_end].trim();
            let mut consumed = rule_end + 1;
            let mut reason = None;
            if tail[rule_end..].starts_with(',') {
                // `reason = "…"` — the reason is the quoted span, so a `)`
                // inside it (e.g. "link() rejects …") does not end the
                // directive early.
                let after = &tail[rule_end + 1..];
                if let Some(q1) = after.find('"') {
                    if let Some(q2) = after[q1 + 1..].find('"') {
                        let r = &after[q1 + 1..q1 + 1 + q2];
                        if !r.is_empty() {
                            reason = Some(r.to_string());
                        }
                        consumed = rule_end + 1 + q1 + 1 + q2 + 1;
                    }
                }
            }
            out.push(AllowDirective {
                rule: rule.to_ascii_uppercase(),
                reason,
                line: c.end_line,
            });
            rest = &rest[args_start + consumed..];
        }
    }
    out
}

/// Names imported from workspace crates: the `xfraud*` crate idents
/// themselves plus every leaf of a `use xfraud_foo::…` tree.
fn collect_workspace_imports(tokens: &[Token]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].kind == TokenKind::Ident && tokens[i].text.starts_with("xfraud") {
            push_unique(&mut names, &tokens[i].text);
        }
        if tokens[i].text == "use"
            && tokens
                .get(i + 1)
                .is_some_and(|t| t.text.starts_with("xfraud"))
        {
            // Walk the use-tree to its `;`, collecting leaf idents (an ident
            // not followed by `::`). `as` renames keep the rename. The crate
            // name itself counts too (`xfraud_gnn::predict_scores(…)` calls).
            push_unique(&mut names, &tokens[i + 1].text);
            let mut j = i + 1;
            while j < tokens.len() && tokens[j].text != ";" {
                let followed_by_path = tokens.get(j + 1).is_some_and(|t| t.text == ":")
                    && tokens.get(j + 2).is_some_and(|t| t.text == ":");
                let renamed = tokens.get(j + 1).is_some_and(|t| t.text == "as");
                if tokens[j].kind == TokenKind::Ident
                    && tokens[j].text != "as"
                    && !followed_by_path
                    && !renamed
                {
                    push_unique(&mut names, &tokens[j].text);
                }
                j += 1;
            }
            i = j;
        }
        i += 1;
    }
    names
}

fn push_unique(names: &mut Vec<String>, name: &str) {
    if !names.iter().any(|n| n == name) {
        names.push(name.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn file(src: &str) -> SourceFile {
        SourceFile::from_source(Path::new("fixture.rs"), src)
    }

    #[test]
    fn cfg_test_modules_are_masked() {
        let src = r#"
            fn library_code() { risky(); }
            #[cfg(test)]
            mod tests {
                fn helper() { also_risky(); }
            }
        "#;
        let f = file(src);
        let risky = f.tokens.iter().position(|t| t.text == "risky").unwrap();
        let also = f
            .tokens
            .iter()
            .position(|t| t.text == "also_risky")
            .unwrap();
        assert!(!f.test_mask[risky]);
        assert!(f.test_mask[also]);
    }

    #[test]
    fn test_fns_are_masked_individually() {
        let src = r#"
            #[test]
            fn a_test() { in_test(); }
            fn library_code() { in_lib(); }
        "#;
        let f = file(src);
        let t = f.tokens.iter().position(|t| t.text == "in_test").unwrap();
        let l = f.tokens.iter().position(|t| t.text == "in_lib").unwrap();
        assert!(f.test_mask[t]);
        assert!(!f.test_mask[l]);
    }

    #[test]
    fn allow_directives_parse_rule_and_reason() {
        let src = "let x = 1; // xlint: allow(p1, reason = \"bounded by construction\")\n";
        let f = file(src);
        assert_eq!(f.allows.len(), 1);
        assert_eq!(f.allows[0].rule, "P1");
        assert_eq!(
            f.allows[0].reason.as_deref(),
            Some("bounded by construction")
        );
        assert!(f.allowed("P1", 1).is_some());
        assert!(f.allowed("P1", 2).is_some(), "covers the next line too");
        assert!(f.allowed("D1", 1).is_none());
    }

    #[test]
    fn workspace_imports_are_collected() {
        let src = "use xfraud_gnn::{predict_scores, Sampler as S};\nuse std::fmt;\nfn f() { xfraud_hetgraph::community_of(); }\n";
        let f = file(src);
        assert!(f.workspace_imports.iter().any(|n| n == "xfraud_gnn"));
        assert!(f.workspace_imports.iter().any(|n| n == "predict_scores"));
        assert!(f.workspace_imports.iter().any(|n| n == "S"));
        assert!(f.workspace_imports.iter().any(|n| n == "xfraud_hetgraph"));
        assert!(!f.workspace_imports.iter().any(|n| n == "fmt"));
        assert!(
            !f.workspace_imports.iter().any(|n| n == "Sampler"),
            "renamed import keeps the rename only"
        );
    }
}
