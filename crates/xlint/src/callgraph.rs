//! The workspace call graph: every parsed `fn` item as a node, resolved
//! call edges between them, and the reachability queries the
//! interprocedural rules (L2/P2/D3) ask.
//!
//! ## Resolution model (and its approximations)
//!
//! The workspace has no `syn` and no type information, so resolution is
//! name-based over a **flat per-crate namespace** (module paths inside a
//! crate are ignored — the repo's crates are small and re-export their
//! public items at the crate root anyway). The direction of every
//! approximation is chosen per consumer:
//!
//! * **Plain calls** (`helper()`) resolve to every same-crate fn of that
//!   name, falling back to the file's workspace imports. Over-approximate
//!   (two private `helper`s in one crate both match) — safe for
//!   reachability rules, which only ever *add* paths.
//! * **Path calls** (`xfraud_gnn::predict_scores(…)`,
//!   `Type::assoc(…)`, `Self::helper(…)`, `crate::…`) resolve through
//!   the named crate, the file's `use` map, and each crate's `pub use`
//!   re-export table — the re-export hop is what lets determinism taint
//!   cross a façade crate.
//! * **Method calls** (`.score(…)`) resolve by name to impl methods in
//!   the caller's crate and in crates the file imports from, except
//!   names on a denylist of std-alike methods (`.get`, `.len`, …) that
//!   would otherwise glue the graph into one blob. Under-approximate:
//!   trait-object dispatch through a std-alike name produces no edge.
//!
//! `#[cfg(test)]` items are parsed but excluded from nodes — test code
//! may panic and read clocks freely, and edges from tests would poison
//! every reachability query.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::parser::{CallSite, FnItem, ParsedFile};

/// A resolved call edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    pub callee: usize,
    pub line: u32,
    /// Index of the call site in the caller's `calls` vec (carries the
    /// under-lock set for the lock graph).
    pub site: usize,
}

/// The workspace call graph. Nodes are indices into `fns`.
#[derive(Debug, Default)]
pub struct CallGraph {
    pub fns: Vec<FnItem>,
    /// Outgoing resolved edges per fn, deterministic order.
    pub edges: Vec<Vec<Edge>>,
    /// Incoming edges per fn (callers), for reverse reachability.
    pub reverse: Vec<Vec<usize>>,
    /// `(crate, name)` → free-fn indices.
    free_index: BTreeMap<(String, String), Vec<usize>>,
    /// `(crate, impl_type, name)` → method indices.
    assoc_index: BTreeMap<(String, String, String), Vec<usize>>,
    /// `name` → method indices (for `.name(…)` resolution), per crate.
    method_index: BTreeMap<(String, String), Vec<usize>>,
    /// `(crate, exported leaf)` → `(source crate, original name)` from
    /// `pub use` declarations.
    reexports: BTreeMap<(String, String), (String, String)>,
}

/// Per-file context the resolver needs: which crate the file belongs to
/// and what its `use` declarations import.
struct FileCtx {
    crate_name: String,
    /// leaf name → (source crate, original name).
    imports: BTreeMap<String, (String, String)>,
    /// Crates this file imports *anything* from (method resolution
    /// fans out to these).
    import_crates: Vec<String>,
}

impl CallGraph {
    /// Builds the graph from parsed files. `files` is
    /// `(workspace-relative path, crate lib name, parsed)` — order
    /// defines node numbering, so callers pass a sorted collection.
    pub fn build(files: &[(String, String, ParsedFile)]) -> CallGraph {
        let mut g = CallGraph::default();

        // Collect nodes and indices.
        for (_, crate_name, parsed) in files {
            for u in &parsed.uses {
                if u.is_reexport && u.leaf != "*" {
                    g.reexports.insert(
                        (crate_name.clone(), u.leaf.clone()),
                        (u.crate_name.clone(), u.original.clone()),
                    );
                }
            }
            for f in &parsed.fns {
                if f.is_test {
                    continue;
                }
                let idx = g.fns.len();
                g.fns.push(f.clone());
                match &f.impl_type {
                    Some(ty) => {
                        g.assoc_index
                            .entry((f.crate_name.clone(), ty.clone(), f.name.clone()))
                            .or_default()
                            .push(idx);
                        g.method_index
                            .entry((f.crate_name.clone(), f.name.clone()))
                            .or_default()
                            .push(idx);
                    }
                    None => {
                        g.free_index
                            .entry((f.crate_name.clone(), f.name.clone()))
                            .or_default()
                            .push(idx);
                    }
                }
            }
        }
        g.edges = vec![Vec::new(); g.fns.len()];
        g.reverse = vec![Vec::new(); g.fns.len()];

        // Resolve edges. Walk files again in the same order so node
        // indices line up with the per-file fn sequence.
        let mut node = 0usize;
        for (_, crate_name, parsed) in files {
            let ctx = FileCtx::new(crate_name, parsed);
            for f in &parsed.fns {
                if f.is_test {
                    continue;
                }
                for (site, call) in f.calls.iter().enumerate() {
                    let mut targets = g.resolve(call, &ctx, f.impl_type.as_deref());
                    targets.sort_unstable();
                    targets.dedup();
                    for callee in targets {
                        if callee == node {
                            continue; // self-recursion adds nothing to reachability
                        }
                        g.edges[node].push(Edge {
                            callee,
                            line: call.line,
                            site,
                        });
                    }
                }
                node += 1;
            }
        }
        for (caller, outs) in g.edges.iter().enumerate() {
            for e in outs {
                g.reverse[e.callee].push(caller);
            }
        }
        for callers in &mut g.reverse {
            callers.sort_unstable();
            callers.dedup();
        }
        g
    }

    /// Resolves one call site to node indices (possibly empty — calls
    /// into std or shims have no workspace target).
    fn resolve(&self, call: &CallSite, ctx: &FileCtx, impl_type: Option<&str>) -> Vec<usize> {
        if call.is_method {
            let name = &call.path[0];
            let mut out = self.methods_in(&ctx.crate_name, name);
            for k in &ctx.import_crates {
                out.extend(self.methods_in(k, name));
            }
            return out;
        }
        match call.path.as_slice() {
            [name] => {
                let mut out = self.free_in(&ctx.crate_name, name);
                if out.is_empty() {
                    if let Some((k, orig)) = ctx.imports.get(name) {
                        out = self.item_in(k, None, orig);
                    }
                }
                out
            }
            [first, rest @ ..] => {
                let last = rest.last().expect("path has >= 2 segments");
                let qualifier = if rest.len() >= 2 {
                    Some(rest[rest.len() - 2].as_str())
                } else {
                    None
                };
                if first == "self" || first == "crate" {
                    return self.item_in(&ctx.crate_name, qualifier, last);
                }
                if first == "Self" {
                    if let Some(ty) = impl_type {
                        return self.assoc_in(&ctx.crate_name, ty, last);
                    }
                    return Vec::new();
                }
                // `xfraud_foo::…` — an explicit workspace crate path.
                if first.starts_with("xfraud") || first == "xlint" {
                    return self.item_in(first, qualifier, last);
                }
                // `Type::assoc(…)` / `module::fn(…)` through an import.
                if let Some((k, orig)) = ctx.imports.get(first) {
                    let qual = qualifier.or(Some(orig.as_str()));
                    let mut out = self.item_in(k, qual, last);
                    if out.is_empty() {
                        out = self.item_in(k, None, last);
                    }
                    return out;
                }
                // A type defined in this crate (`Engine::new(…)`).
                let mut out = self.assoc_in(&ctx.crate_name, first, last);
                if out.is_empty() && qualifier.is_some() {
                    out = self.item_in(&ctx.crate_name, qualifier, last);
                }
                out
            }
            [] => Vec::new(),
        }
    }

    /// Free fn or assoc fn `name` in `crate_name`, following one
    /// re-export hop when the crate itself has no such item.
    fn item_in(&self, crate_name: &str, qualifier: Option<&str>, name: &str) -> Vec<usize> {
        if let Some(q) = qualifier {
            let out = self.assoc_in(crate_name, q, name);
            if !out.is_empty() {
                return out;
            }
        }
        let out = self.free_in(crate_name, name);
        if !out.is_empty() {
            return out;
        }
        // Any impl's method of that name in the crate (path written
        // through a module we flattened away).
        let out = self.methods_in(crate_name, name);
        if !out.is_empty() {
            return out;
        }
        // Re-export hop: `pub use other_crate::name` in `crate_name`.
        if let Some((src, orig)) = self
            .reexports
            .get(&(crate_name.to_string(), name.to_string()))
        {
            if src != crate_name {
                return self.item_in(src, None, orig);
            }
        }
        Vec::new()
    }

    fn free_in(&self, crate_name: &str, name: &str) -> Vec<usize> {
        self.free_index
            .get(&(crate_name.to_string(), name.to_string()))
            .cloned()
            .unwrap_or_default()
    }

    fn assoc_in(&self, crate_name: &str, ty: &str, name: &str) -> Vec<usize> {
        self.assoc_index
            .get(&(crate_name.to_string(), ty.to_string(), name.to_string()))
            .cloned()
            .unwrap_or_default()
    }

    fn methods_in(&self, crate_name: &str, name: &str) -> Vec<usize> {
        self.method_index
            .get(&(crate_name.to_string(), name.to_string()))
            .cloned()
            .unwrap_or_default()
    }

    /// `reached[i]` — fn `i` can transitively reach one of `roots`
    /// (roots themselves included) following call edges forward.
    pub fn reaches(&self, roots: &[usize]) -> Vec<bool> {
        let mut reached = vec![false; self.fns.len()];
        let mut stack: Vec<usize> = Vec::new();
        for &r in roots {
            if !reached[r] {
                reached[r] = true;
                stack.push(r);
            }
        }
        // Walk *callers*: f reaches a root iff f calls something that
        // does.
        while let Some(n) = stack.pop() {
            for &caller in &self.reverse[n] {
                if !reached[caller] {
                    reached[caller] = true;
                    stack.push(caller);
                }
            }
        }
        reached
    }

    /// Shortest call path (BFS, deterministic) from `from` to any fn
    /// with `target[i] == true`; returns node indices including both
    /// endpoints, or an empty vec when unreachable.
    pub fn path_to(&self, from: usize, target: &[bool]) -> Vec<usize> {
        if target[from] {
            return vec![from];
        }
        let mut prev: Vec<Option<usize>> = vec![None; self.fns.len()];
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(from);
        prev[from] = Some(from);
        while let Some(n) = queue.pop_front() {
            for e in &self.edges[n] {
                if prev[e.callee].is_none() {
                    prev[e.callee] = Some(n);
                    if target[e.callee] {
                        // Reconstruct.
                        let mut path = vec![e.callee];
                        let mut cur = n;
                        while cur != from {
                            path.push(cur);
                            cur = prev[cur].expect("visited nodes have predecessors");
                        }
                        path.push(from);
                        path.reverse();
                        return path;
                    }
                    queue.push_back(e.callee);
                }
            }
        }
        Vec::new()
    }

    /// Human-readable label for node `i`: `crate::Type::name` or
    /// `crate::name`.
    pub fn label(&self, i: usize) -> String {
        let f = &self.fns[i];
        match &f.impl_type {
            Some(ty) => format!("{}::{}::{}", f.crate_name, ty, f.name),
            None => format!("{}::{}", f.crate_name, f.name),
        }
    }

    /// Graphviz DOT rendering, one cluster per crate. Deterministic.
    pub fn to_dot(&self) -> String {
        let mut by_crate: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, f) in self.fns.iter().enumerate() {
            by_crate.entry(f.crate_name.as_str()).or_default().push(i);
        }
        let mut out = String::new();
        out.push_str("digraph callgraph {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n");
        for (krate, nodes) in &by_crate {
            let _ = writeln!(out, "  subgraph \"cluster_{krate}\" {{");
            let _ = writeln!(out, "    label=\"{krate}\";");
            for &i in nodes {
                let f = &self.fns[i];
                let name = match &f.impl_type {
                    Some(ty) => format!("{ty}::{}", f.name),
                    None => f.name.clone(),
                };
                let shape = if f.is_pub { "" } else { ", style=dashed" };
                let _ = writeln!(out, "    n{i} [label=\"{name}\"{shape}];");
            }
            out.push_str("  }\n");
        }
        for (i, outs) in self.edges.iter().enumerate() {
            let mut seen: Vec<usize> = Vec::new();
            for e in outs {
                if !seen.contains(&e.callee) {
                    seen.push(e.callee);
                    let _ = writeln!(out, "  n{i} -> n{};", e.callee);
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

impl FileCtx {
    fn new(crate_name: &str, parsed: &ParsedFile) -> FileCtx {
        let mut imports = BTreeMap::new();
        let mut import_crates: Vec<String> = Vec::new();
        for u in &parsed.uses {
            if u.leaf != "*" {
                imports.insert(u.leaf.clone(), (u.crate_name.clone(), u.original.clone()));
            }
            if u.crate_name != crate_name && !import_crates.iter().any(|c| c == &u.crate_name) {
                import_crates.push(u.crate_name.clone());
            }
        }
        FileCtx {
            crate_name: crate_name.to_string(),
            imports,
            import_crates,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;
    use crate::source::SourceFile;
    use std::path::Path;

    fn graph(files: &[(&str, &str, &str)]) -> CallGraph {
        let parsed: Vec<(String, String, ParsedFile)> = files
            .iter()
            .map(|(path, krate, src)| {
                let sf = SourceFile::from_source(Path::new(path), src);
                (path.to_string(), krate.to_string(), parse_file(&sf, krate))
            })
            .collect();
        CallGraph::build(&parsed)
    }

    fn idx(g: &CallGraph, name: &str) -> usize {
        g.fns.iter().position(|f| f.name == name).unwrap()
    }

    fn has_edge(g: &CallGraph, from: &str, to: &str) -> bool {
        let f = idx(g, from);
        let t = idx(g, to);
        g.edges[f].iter().any(|e| e.callee == t)
    }

    #[test]
    fn same_crate_and_cross_crate_paths_resolve() {
        let g = graph(&[
            (
                "crates/a/src/lib.rs",
                "xfraud_a",
                "pub fn api() { helper(); xfraud_b::remote(); }\nfn helper() {}",
            ),
            ("crates/b/src/lib.rs", "xfraud_b", "pub fn remote() {}"),
        ]);
        assert!(has_edge(&g, "api", "helper"));
        assert!(has_edge(&g, "api", "remote"));
    }

    #[test]
    fn imported_and_renamed_calls_resolve() {
        let g = graph(&[
            (
                "crates/a/src/lib.rs",
                "xfraud_a",
                "use xfraud_b::{remote, other as o};\npub fn api() { remote(); o(); }",
            ),
            (
                "crates/b/src/lib.rs",
                "xfraud_b",
                "pub fn remote() {}\npub fn other() {}",
            ),
        ]);
        assert!(has_edge(&g, "api", "remote"));
        assert!(has_edge(&g, "api", "other"));
    }

    #[test]
    fn assoc_and_self_calls_resolve() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "xfraud_a",
            "impl Engine {\n  pub fn run(&self) { Self::step(); Engine::halt(); }\n  fn step() {}\n  fn halt() {}\n}",
        )]);
        assert!(has_edge(&g, "run", "step"));
        assert!(has_edge(&g, "run", "halt"));
    }

    #[test]
    fn reexports_bridge_crates() {
        let g = graph(&[
            (
                "crates/det/src/lib.rs",
                "xfraud_det",
                "pub fn sample() { xfraud_mid::now_ms(); }",
            ),
            (
                "crates/mid/src/lib.rs",
                "xfraud_mid",
                "pub use xfraud_entropy::now_ms;",
            ),
            (
                "crates/entropy/src/lib.rs",
                "xfraud_entropy",
                "pub fn now_ms() -> u64 { 0 }",
            ),
        ]);
        assert!(has_edge(&g, "sample", "now_ms"));
    }

    #[test]
    fn method_calls_resolve_within_import_closure_only() {
        let g = graph(&[
            (
                "crates/a/src/lib.rs",
                "xfraud_a",
                "use xfraud_b::Engine;\npub fn api(e: &Engine) { e.score(); }",
            ),
            (
                "crates/b/src/lib.rs",
                "xfraud_b",
                "impl Engine { pub fn score(&self) {} }",
            ),
            (
                "crates/c/src/lib.rs",
                "xfraud_c",
                "impl Other { pub fn score(&self) {} }",
            ),
        ]);
        let api = idx(&g, "api");
        let callees: Vec<String> = g.edges[api]
            .iter()
            .map(|e| g.fns[e.callee].crate_name.clone())
            .collect();
        assert!(callees.contains(&"xfraud_b".to_string()));
        assert!(
            !callees.contains(&"xfraud_c".to_string()),
            "crate c is not imported by the caller's file"
        );
    }

    #[test]
    fn test_fns_are_not_nodes() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "xfraud_a",
            "pub fn lib() {}\n#[cfg(test)]\nmod t { fn helper() { super::lib(); } }",
        )]);
        assert_eq!(g.fns.len(), 1);
    }

    #[test]
    fn reachability_and_witness_paths() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "xfraud_a",
            "pub fn api() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\nfn unrelated() {}",
        )]);
        let leaf = idx(&g, "leaf");
        let reached = g.reaches(&[leaf]);
        assert!(reached[idx(&g, "api")]);
        assert!(reached[idx(&g, "mid")]);
        assert!(!reached[idx(&g, "unrelated")]);
        let mut target = vec![false; g.fns.len()];
        target[leaf] = true;
        let path = g.path_to(idx(&g, "api"), &target);
        let names: Vec<_> = path.iter().map(|&i| g.fns[i].name.as_str()).collect();
        assert_eq!(names, ["api", "mid", "leaf"]);
    }

    #[test]
    fn dot_output_is_deterministic_and_clustered() {
        let files = [
            (
                "crates/a/src/lib.rs",
                "xfraud_a",
                "pub fn api() { xfraud_b::remote(); }",
            ),
            ("crates/b/src/lib.rs", "xfraud_b", "pub fn remote() {}"),
        ];
        let d1 = graph(&files).to_dot();
        let d2 = graph(&files).to_dot();
        assert_eq!(d1, d2);
        assert!(d1.contains("cluster_xfraud_a"));
        assert!(d1.contains("->"));
    }
}
