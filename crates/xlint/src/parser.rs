//! A lightweight item parser on top of [`crate::lexer`]: extracts the
//! functions, impl blocks, `use` declarations, call sites and lock
//! acquisitions the interprocedural rules (L2/P2/D3) consume.
//!
//! This is *not* a Rust parser — it is a structural scan over the token
//! stream that recovers exactly the facts the call/lock graphs need:
//!
//! * every `fn` item with its name, visibility, enclosing `impl`/`trait`
//!   type, file and line span;
//! * every call made inside a body, as a path (`helper`,
//!   `xfraud_gnn::predict_scores`, `Self::add_budget`) or a method call
//!   (`.score(…)`);
//! * every lock acquisition (`.lock()` / `.read()` / `.write()` with an
//!   empty argument list — the same shape rule L1 matches) with a
//!   canonical lock identity and the set of locks already held when it
//!   happens;
//! * every `use` declaration that imports from a workspace crate, with
//!   renames and `pub use` re-exports preserved (re-exports are how
//!   determinism taint crosses crates without a direct dependency edge).
//!
//! Everything here is deliberately an approximation. The resolver in
//! [`crate::callgraph`] documents the direction of each approximation;
//! the parser's only job is to never panic and never attribute a token
//! inside a string, comment or `#[cfg(test)]` block to library code.

use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;

/// One `fn` item (free function, inherent/trait method, or default trait
/// method) with everything the graph builders need.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Lib-crate name this item lives in (`xfraud_serve`, `xfraud`, …).
    pub crate_name: String,
    pub name: String,
    /// Leaf name of the enclosing `impl`/`trait` self type, if any.
    pub impl_type: Option<String>,
    /// `pub` without a restriction (`pub(crate)` does not count — it is
    /// not API surface).
    pub is_pub: bool,
    /// The item is `#[cfg(test)]`/`#[test]`-gated; excluded from graphs.
    pub is_test: bool,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based line of the body's closing brace (== `line` for
    /// body-less declarations).
    pub end_line: u32,
    pub calls: Vec<CallSite>,
    pub locks: Vec<LockSite>,
    /// Durability-relevant file operations (fsync / rename) in body
    /// order, on the same token-index timeline as `calls[].seq`.
    pub fs_events: Vec<FsEvent>,
}

/// A call made inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Path segments as written (`["helper"]`,
    /// `["xfraud_gnn", "predict_scores"]`, `["Self", "add_budget"]`).
    /// Method calls carry the bare method name.
    pub path: Vec<String>,
    /// `.name(…)` receiver call (resolved by name across impls).
    pub is_method: bool,
    pub line: u32,
    /// Token index of the call head inside the file — orders the call
    /// against [`FsEvent`]s in the same body (rule F1's domination check).
    pub seq: u32,
    /// Indices into the owning item's `locks` — acquisitions whose guard
    /// is still live at this call.
    pub under_locks: Vec<usize>,
}

/// A durability-relevant filesystem operation inside a function body
/// (rule F1's event stream). `seq` shares the token-index timeline with
/// [`CallSite::seq`], so "a sync happens before this rename" is a plain
/// integer comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FsEvent {
    pub kind: FsEventKind,
    pub line: u32,
    /// Token index of the operation inside the file.
    pub seq: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsEventKind {
    /// `.sync_all()` / `.sync_data()` — forces bytes to stable storage.
    Sync,
    /// `fs::rename(…)` (or a `.rename(…)` method) — publishes a file
    /// under its durable name.
    Rename,
}

/// One lock acquisition inside a function body.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Canonical lock identity: `crate::Type.field` for `self.field`
    /// receivers, `crate::fn.var` for locals (fn-scoped so unrelated
    /// locals never alias).
    pub id: String,
    /// `lock`, `read` or `write`.
    pub op: String,
    pub line: u32,
    /// Locks (indices into the same `locks` vec) already held here —
    /// each pair is a direct lock-order edge.
    pub under_locks: Vec<usize>,
}

/// One name imported by a `use` declaration.
#[derive(Debug, Clone)]
pub struct UseItem {
    /// Name as visible in the importing file (after `as` renames).
    pub leaf: String,
    /// Original item name in the source crate.
    pub original: String,
    /// Source crate lib name (`xfraud_gnn`), or the current crate's own
    /// name for `use crate::…` / `use self::…` paths.
    pub crate_name: String,
    /// `pub use` — the importing crate re-exports this name.
    pub is_reexport: bool,
}

/// Parser output for one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    pub fns: Vec<FnItem>,
    pub uses: Vec<UseItem>,
}

/// Keywords that can look like call heads but never are.
const CALL_KEYWORDS: &[&str] = &[
    "if", "else", "match", "while", "for", "loop", "return", "break", "continue", "let", "fn",
    "mod", "struct", "enum", "trait", "impl", "use", "pub", "in", "as", "ref", "mut", "move",
    "where", "unsafe", "async", "await", "dyn", "const", "static", "crate", "super", "self",
    "type", "extern",
];

/// Tokens that may sit between a `pub`/qualifier run and the `fn` keyword.
const FN_QUALIFIERS: &[&str] = &["pub", "const", "unsafe", "async", "extern", "default"];

const LOCK_METHODS: &[&str] = &["lock", "read", "write"];

/// Method names that force bytes to stable storage (rule F1's "sync"
/// events).
const SYNC_METHODS: &[&str] = &["sync_all", "sync_data"];

/// Method names too generic to resolve by name across the workspace —
/// resolving `.get(…)` to every `fn get` in every impl would wire the
/// call graph into one blob. Calls through these still resolve when
/// written as paths (`Type::get(…)`).
const METHOD_DENYLIST: &[&str] = &[
    "new",
    "clone",
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "contains",
    "contains_key",
    "keys",
    "values",
    "entry",
    "extend",
    "drain",
    "clear",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "min",
    "max",
    "map",
    "and_then",
    "or_else",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok",
    "ok_or",
    "ok_or_else",
    "err",
    "expect",
    "unwrap",
    "take",
    "replace",
    "as_ref",
    "as_mut",
    "as_slice",
    "as_str",
    "as_bytes",
    "to_string",
    "to_vec",
    "to_owned",
    "into",
    "from",
    "fmt",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "total_cmp",
    "hash",
    "default",
    "drop",
    "clamp",
    "abs",
    "min_by",
    "max_by",
    "sum",
    "product",
    "collect",
    "filter",
    "filter_map",
    "flat_map",
    "fold",
    "zip",
    "rev",
    "skip",
    "chain",
    "count",
    "enumerate",
    "position",
    "find",
    "any",
    "all",
    "split",
    "join",
    "trim",
    "parse",
    "write",
    "read",
    "flush",
    "lock",
    "borrow",
    "borrow_mut",
    "load",
    "store",
    "fetch_add",
    "swap",
    "send",
    "recv",
    "try_recv",
    "start_send",
    "wait",
    "notify_one",
    "notify_all",
    "spawn",
    "first",
    "last",
    "copied",
    "cloned",
    "chunks",
    "windows",
    "rows",
    "cols",
    "row",
    "col",
    "dim",
    "shape",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
];

/// Parses one file into items. `crate_name` is the owning crate's lib
/// name; it prefixes lock identities and resolves `crate::`/`self::`
/// call paths.
pub fn parse_file(sf: &SourceFile, crate_name: &str) -> ParsedFile {
    let toks = &sf.tokens;
    let mut out = ParsedFile {
        fns: Vec::new(),
        uses: collect_uses(toks, crate_name),
    };

    // Stack of open `impl`/`trait` blocks: (self-type leaf, depth of the
    // block's `{` token). The innermost entry covering a `fn` names the
    // method's self type.
    let mut type_stack: Vec<(String, u32)> = Vec::new();

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        // Close impl/trait blocks whose `}` we just passed.
        if t.text == "}" {
            while type_stack.last().is_some_and(|(_, d)| t.brace_depth <= *d) {
                type_stack.pop();
            }
            i += 1;
            continue;
        }
        if t.kind == TokenKind::Ident && (t.text == "impl" || t.text == "trait") {
            if let Some((ty, open_idx)) = parse_impl_header(toks, i, t.text == "trait") {
                type_stack.push((ty, toks[open_idx].brace_depth));
                i = open_idx + 1;
                continue;
            }
            i += 1;
            continue;
        }
        if t.kind == TokenKind::Ident
            && t.text == "fn"
            && toks.get(i + 1).map(|n| n.kind) == Some(TokenKind::Ident)
        {
            let (item, next) = parse_fn(sf, crate_name, &type_stack, i);
            out.fns.push(item);
            i = next;
            continue;
        }
        i += 1;
    }
    out
}

/// Parses an `impl`/`trait` header starting at `i` (the keyword).
/// Returns `(self-type leaf, index of the opening '{')`, or `None` for
/// headers without a body (a malformed header must not wedge the scan).
/// For `trait Foo: Bar { … }` the name is the *first* ident; for
/// `impl Trait for Type<…> where … { … }` it is the last path ident
/// after `for` (or overall when there is no `for`), with `where`-clause
/// idents excluded.
fn parse_impl_header(toks: &[Token], i: usize, is_trait: bool) -> Option<(String, usize)> {
    let mut j = i + 1;
    // Skip generic parameters `<…>` (tokens are single puncts, so `>>`
    // arrives as two `>`s and plain depth counting works).
    if toks.get(j).is_some_and(|t| t.text == "<") {
        let mut depth = 0i32;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    let mut first_ident: Option<String> = None;
    let mut last_ident: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    let mut in_where = false;
    let mut angle = 0i32;
    while j < toks.len() {
        let t = &toks[j];
        match t.text.as_str() {
            "{" if angle <= 0 => {
                let ty = if is_trait {
                    first_ident
                } else if saw_for {
                    after_for
                } else {
                    last_ident
                };
                return ty.map(|ty| (ty, j));
            }
            ";" if angle <= 0 => return None,
            "<" => angle += 1,
            ">" => angle -= 1,
            "for" if t.kind == TokenKind::Ident && angle <= 0 => saw_for = true,
            "where" if t.kind == TokenKind::Ident && angle <= 0 => in_where = true,
            _ => {
                if t.kind == TokenKind::Ident && angle <= 0 && !in_where {
                    first_ident.get_or_insert_with(|| t.text.clone());
                    if saw_for {
                        after_for = Some(t.text.clone());
                    } else {
                        last_ident = Some(t.text.clone());
                    }
                }
            }
        }
        j += 1;
    }
    None
}

/// Parses the `fn` item whose keyword sits at `i`; returns the item and
/// the index scanning should resume from (past the body, so nested fns
/// and closures attribute their calls to the enclosing item exactly
/// once).
fn parse_fn(
    sf: &SourceFile,
    crate_name: &str,
    type_stack: &[(String, u32)],
    i: usize,
) -> (FnItem, usize) {
    let toks = &sf.tokens;
    let name = toks[i + 1].text.clone();
    let impl_type = type_stack.last().map(|(t, _)| t.clone());
    let is_test = sf.test_mask[i];
    let is_pub = fn_is_pub(toks, i);

    // Find the body `{` or the declaration's `;`. Bracket depth is
    // tracked so a `;` inside an array type (`[u8; 4]`) in the
    // signature does not end the item early.
    let mut j = i + 2;
    let mut body: Option<(usize, usize)> = None;
    let mut brackets = 0i32;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "[" => {
                brackets += 1;
                j += 1;
                continue;
            }
            "]" => {
                brackets -= 1;
                j += 1;
                continue;
            }
            ";" if brackets <= 0 && toks[j].brace_depth == toks[i].brace_depth => break,
            "{" => {
                let open_depth = toks[j].brace_depth;
                let mut k = j + 1;
                while k < toks.len() {
                    if toks[k].text == "}" && toks[k].brace_depth == open_depth {
                        break;
                    }
                    k += 1;
                }
                body = Some((j, k.min(toks.len() - 1)));
                break;
            }
            _ => j += 1,
        }
    }

    let (end_line, next) = match body {
        Some((_, close)) => (toks[close].line, close + 1),
        None => (toks[i].line, j + 1),
    };
    let mut item = FnItem {
        crate_name: crate_name.to_string(),
        name,
        impl_type,
        is_pub,
        is_test,
        file: sf.rel_path.display().to_string(),
        line: toks[i].line,
        end_line,
        calls: Vec::new(),
        locks: Vec::new(),
        fs_events: Vec::new(),
    };
    if let Some((open, close)) = body {
        scan_body(sf, crate_name, &mut item, open, close);
    }
    (item, next)
}

/// Does the `fn` at `i` carry an unrestricted `pub`? Walks back over the
/// qualifier run (`pub const unsafe extern "C" fn` …).
fn fn_is_pub(toks: &[Token], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        let is_qualifier = (t.kind == TokenKind::Ident && FN_QUALIFIERS.contains(&t.text.as_str()))
            || t.kind == TokenKind::Literal // extern "C"
            || t.text == ")"
            || t.text == "("
            || (t.kind == TokenKind::Ident && (t.text == "crate" || t.text == "super"));
        if !is_qualifier {
            return false;
        }
        if t.text == "pub" {
            // `pub(crate)`/`pub(super)` restrict visibility — not API.
            return toks.get(j + 1).is_none_or(|n| n.text != "(");
        }
    }
    false
}

/// Scans a fn body (token range `open..=close`) for call sites and lock
/// acquisitions, then computes which guards are live at each.
fn scan_body(sf: &SourceFile, crate_name: &str, item: &mut FnItem, open: usize, close: usize) {
    let toks = &sf.tokens;
    // (site, token index) pairs; liveness is resolved afterwards.
    let mut calls: Vec<(CallSite, usize)> = Vec::new();
    let mut locks: Vec<(LockSite, usize, usize)> = Vec::new(); // (site, tok, live_end)

    let mut j = open + 1;
    while j < close {
        if sf.test_mask[j] {
            j += 1;
            continue;
        }
        let t = &toks[j];
        // Lock acquisition: `. lock ( )` etc.
        if t.kind == TokenKind::Ident
            && LOCK_METHODS.contains(&t.text.as_str())
            && j >= 1
            && toks[j - 1].text == "."
            && toks.get(j + 1).is_some_and(|n| n.text == "(")
            && toks.get(j + 2).is_some_and(|n| n.text == ")")
        {
            let receiver = receiver_chain(toks, j - 1);
            let id = lock_identity(crate_name, item, &receiver);
            let live_end = guard_live_end(toks, j, close);
            locks.push((
                LockSite {
                    id,
                    op: t.text.clone(),
                    line: t.line,
                    under_locks: Vec::new(),
                },
                j,
                live_end,
            ));
            j += 3;
            continue;
        }
        // Method call: `. name (` — but a `. lock ( )` acquisition is
        // left for the ident-anchored branch above on the next step.
        if t.text == "."
            && toks.get(j + 1).is_some_and(|n| n.kind == TokenKind::Ident)
            && toks.get(j + 2).is_some_and(|n| n.text == "(")
            && !(LOCK_METHODS.contains(&toks[j + 1].text.as_str())
                && toks.get(j + 3).is_some_and(|n| n.text == ")"))
        {
            let name = &toks[j + 1].text;
            // Durability events: `.sync_all(` / `.sync_data(` and
            // `.rename(` — recorded alongside the call site (a
            // `.rename(…)` is both an event and a call).
            if SYNC_METHODS.contains(&name.as_str()) {
                item.fs_events.push(FsEvent {
                    kind: FsEventKind::Sync,
                    line: toks[j + 1].line,
                    seq: (j + 1) as u32,
                });
            } else if name == "rename" {
                item.fs_events.push(FsEvent {
                    kind: FsEventKind::Rename,
                    line: toks[j + 1].line,
                    seq: (j + 1) as u32,
                });
            }
            if !METHOD_DENYLIST.contains(&name.as_str()) {
                calls.push((
                    CallSite {
                        path: vec![name.clone()],
                        is_method: true,
                        line: toks[j + 1].line,
                        seq: (j + 1) as u32,
                        under_locks: Vec::new(),
                    },
                    j + 1,
                ));
            }
            j += 2;
            continue;
        }
        // Plain or path call: an ident that *starts* a path (previous
        // token is neither `.` nor the tail of `::`), followed —
        // possibly through `::seg` repetitions and a turbofish — by `(`.
        let prev = j.checked_sub(1).map(|p| toks[p].text.as_str());
        if t.kind == TokenKind::Ident
            && !CALL_KEYWORDS.contains(&t.text.as_str())
            && prev != Some(".")
            && prev != Some("fn") // nested fn definition head
            && !(j >= 2 && prev == Some(":") && toks[j - 2].text == ":")
        {
            if let Some((path, after)) = collect_call_path(toks, j) {
                // `fs::rename(…)` and friends: a path call whose final
                // segment is `rename` is a durability event too.
                if path.last().is_some_and(|s| s == "rename") {
                    item.fs_events.push(FsEvent {
                        kind: FsEventKind::Rename,
                        line: t.line,
                        seq: j as u32,
                    });
                }
                calls.push((
                    CallSite {
                        path,
                        is_method: false,
                        line: t.line,
                        seq: j as u32,
                        under_locks: Vec::new(),
                    },
                    j,
                ));
                j = after;
                continue;
            }
        }
        j += 1;
    }

    // Liveness: a guard covers tokens strictly after its acquisition up
    // to (and including) its live end.
    let lock_ranges: Vec<(usize, usize)> = locks.iter().map(|(_, lt, le)| (*lt, *le)).collect();
    for (call, ct) in calls.iter_mut() {
        call.under_locks = lock_ranges
            .iter()
            .enumerate()
            .filter(|(_, (lt, le))| lt < ct && *ct <= *le)
            .map(|(li, _)| li)
            .collect();
    }
    for li in 0..locks.len() {
        let lt = lock_ranges[li].0;
        locks[li].0.under_locks = lock_ranges
            .iter()
            .enumerate()
            .filter(|(oi, (ot, oe))| *oi != li && *ot < lt && lt <= *oe)
            .map(|(oi, _)| oi)
            .collect();
    }
    item.calls = calls.into_iter().map(|(c, _)| c).collect();
    item.locks = locks.into_iter().map(|(l, _, _)| l).collect();
}

/// Collects the path of a potential call starting at ident `j`.
/// Returns `(segments, index past the opening paren)` when the path is
/// followed by `(`, handling `::` chains, one turbofish, and rejecting
/// macro invocations (`name!`).
fn collect_call_path(toks: &[Token], j: usize) -> Option<(Vec<String>, usize)> {
    let mut segs = vec![toks[j].text.clone()];
    let mut k = j;
    loop {
        // `:: ident` continues the path.
        if toks.get(k + 1).is_some_and(|t| t.text == ":")
            && toks.get(k + 2).is_some_and(|t| t.text == ":")
            && toks.get(k + 3).is_some_and(|t| t.kind == TokenKind::Ident)
        {
            segs.push(toks[k + 3].text.clone());
            k += 3;
            continue;
        }
        break;
    }
    let mut after = k + 1;
    // Turbofish: `:: < … >` between path and arguments.
    if toks.get(after).is_some_and(|t| t.text == ":")
        && toks.get(after + 1).is_some_and(|t| t.text == ":")
        && toks.get(after + 2).is_some_and(|t| t.text == "<")
    {
        let mut depth = 0i32;
        let mut m = after + 2;
        while m < toks.len() {
            match toks[m].text.as_str() {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            m += 1;
        }
        after = m + 1;
    }
    if toks.get(after).is_some_and(|t| t.text == "!") {
        return None; // macro invocation
    }
    if toks.get(after).is_some_and(|t| t.text == "(") {
        return Some((segs, after + 1));
    }
    None
}

/// Walks the receiver expression backwards from the `.` at `dot`,
/// producing the ident chain (`["self", "shards"]`;
/// `["self", "shard_of()"]` for a call-returning receiver). Bracket and
/// paren groups are skipped; a call becomes `name()`.
pub(crate) fn receiver_chain(toks: &[Token], dot: usize) -> Vec<String> {
    let mut chain: Vec<String> = Vec::new();
    let mut k = dot as isize - 1;
    while k >= 0 {
        let t = &toks[k as usize];
        if t.text == "]" {
            // Index group: skip it and keep walking the same chain
            // element (`self.shards[i]` → `self.shards`).
            k = skip_group_back(toks, k, "[", "]");
            continue;
        }
        if t.text == ")" {
            // Call-returning receiver: the ident before the arg list
            // names the call (`self.shard_of(k)` → `shard_of()`).
            k = skip_group_back(toks, k, "(", ")");
            if k >= 0 && toks[k as usize].kind == TokenKind::Ident {
                chain.push(format!("{}()", toks[k as usize].text));
                k -= 1;
            } else {
                break; // parenthesised expression — give up
            }
        } else if t.kind == TokenKind::Ident {
            chain.push(t.text.clone());
            k -= 1;
        } else {
            break;
        }
        // A `.` continues the chain leftwards; anything else ends it.
        if k >= 0 && toks[k as usize].text == "." {
            k -= 1;
        } else {
            break;
        }
    }
    chain.reverse();
    chain
}

/// Index just before the `open` matching the `close` at `close_at`.
fn skip_group_back(toks: &[Token], close_at: isize, open: &str, close: &str) -> isize {
    let mut depth = 0i32;
    let mut k = close_at;
    while k >= 0 {
        let s = &toks[k as usize].text;
        if s == close {
            depth += 1;
        } else if s == open {
            depth -= 1;
            if depth == 0 {
                return k - 1;
            }
        }
        k -= 1;
    }
    -1
}

/// Canonical lock identity. `self`-rooted receivers are named by the
/// *final field segment* only (`crate::self.field`) so the same lock
/// reached through different projections aliases correctly —
/// `self.graph` inside the owning type and `self.shared.graph` from its
/// wrapper are one lock, and splitting them would hide a cycle. This
/// over-aliases two same-named fields on different types in one crate
/// (the safe direction for deadlock detection: a false cycle is
/// reviewable, a missed one is not). Anything not `self`-rooted is
/// scoped to the function (`crate::fn.var`) so unrelated locals never
/// alias.
fn lock_identity(crate_name: &str, item: &FnItem, receiver: &[String]) -> String {
    if receiver.first().is_some_and(|s| s == "self") && receiver.len() >= 2 {
        let field = receiver.last().expect("len >= 2");
        format!("{crate_name}::self.{field}")
    } else if receiver.is_empty() {
        format!("{crate_name}::{}.<expr>", item.name)
    } else {
        format!("{crate_name}::{}.{}", item.name, receiver.join("."))
    }
}

/// Where the guard acquired at token `j` dies: `drop(name)` or the end
/// of the enclosing block for `let`-bound guards, end of statement for
/// temporaries. Returns a token index (inclusive live end).
fn guard_live_end(toks: &[Token], j: usize, body_close: usize) -> usize {
    // `let x = m.lock().something();` — the guard is a *temporary*
    // consumed by the chained call; only the call's result is bound, so
    // the lock is released at the semicolon. (`unwrap`/`expect` chains
    // pass the guard through and keep let-binding semantics.)
    let chained_away = toks.get(j + 3).is_some_and(|t| t.text == ".")
        && toks.get(j + 4).is_some_and(|t| {
            t.kind == TokenKind::Ident && t.text != "unwrap" && t.text != "expect"
        });
    let binding = if chained_away {
        None
    } else {
        enclosing_let(toks, j)
    };
    if let Some((name_idx, stmt_end)) = binding {
        let name = &toks[name_idx].text;
        let let_depth = toks[stmt_end].brace_depth;
        let mut k = stmt_end + 1;
        while k < body_close {
            // The first `}` at the let's own depth closes the guard's
            // block (inner blocks sit at depth+1, so they never match).
            if toks[k].text == "}" && toks[k].brace_depth == let_depth {
                return k;
            }
            if toks[k].text == "drop"
                && toks.get(k + 1).is_some_and(|t| t.text == "(")
                && toks.get(k + 2).is_some_and(|t| &t.text == name)
                && toks.get(k + 3).is_some_and(|t| t.text == ")")
            {
                return k;
            }
            k += 1;
        }
        body_close
    } else {
        // Temporary guard: lives to the end of the statement.
        let depth = toks[j].brace_depth;
        let mut k = j + 1;
        while k < body_close {
            if toks[k].text == ";" && toks[k].brace_depth <= depth {
                return k;
            }
            k += 1;
        }
        body_close
    }
}

/// If the expression containing token `i` is bound by a simple
/// `let [mut] name = …;`, returns `(name index, ';' index)`.
/// (Shared shape with rule L1's scan; duplicated because the rule keeps
/// its own self-contained token walk.)
fn enclosing_let(toks: &[Token], i: usize) -> Option<(usize, usize)> {
    let depth = toks[i].brace_depth;
    let mut j = i;
    loop {
        if j == 0 {
            return None;
        }
        j -= 1;
        let t = &toks[j];
        if t.brace_depth < depth || t.text == ";" || t.text == "{" {
            return None;
        }
        if t.kind == TokenKind::Ident && t.text == "let" {
            break;
        }
    }
    let mut k = j + 1;
    if toks.get(k).is_some_and(|t| t.text == "mut") {
        k += 1;
    }
    if toks.get(k).map(|t| t.kind) != Some(TokenKind::Ident) {
        return None;
    }
    if toks.get(k + 1).is_none_or(|t| t.text != "=") {
        return None;
    }
    let mut e = i;
    while e < toks.len() {
        if toks[e].brace_depth < depth {
            return None;
        }
        if toks[e].text == ";" && toks[e].brace_depth == depth {
            return Some((k, e));
        }
        e += 1;
    }
    None
}

/// Collects `use` declarations. Handles paths, nested trees one level
/// deep (`use a::{b, c::d, e as f}`), renames, and `pub use`
/// re-exports. Glob imports are recorded with leaf `*`.
fn collect_uses(toks: &[Token], crate_name: &str) -> Vec<UseItem> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].kind == TokenKind::Ident && toks[i].text == "use") {
            i += 1;
            continue;
        }
        let is_reexport = i >= 1 && toks[i - 1].text == "pub";
        // Collect the declaration's tokens to its `;`.
        let mut j = i + 1;
        let start = j;
        while j < toks.len() && toks[j].text != ";" {
            j += 1;
        }
        let decl = &toks[start..j];
        i = j + 1;

        // Source crate: first path segment.
        let Some(first) = decl.first() else { continue };
        let src_crate = if first.text.starts_with("xfraud") {
            first.text.clone()
        } else if first.text == "crate" || first.text == "self" || first.text == "super" {
            crate_name.to_string()
        } else {
            continue; // std / shim dependency — irrelevant to the graphs
        };

        // Walk the declaration: an ident is a *leaf* unless followed by
        // `::`; `x as y` renames; `*` is a glob.
        let mut k = 0usize;
        while k < decl.len() {
            let t = &decl[k];
            let followed_by_path = decl.get(k + 1).is_some_and(|n| n.text == ":")
                && decl.get(k + 2).is_some_and(|n| n.text == ":");
            if t.text == "*" {
                out.push(UseItem {
                    leaf: "*".into(),
                    original: "*".into(),
                    crate_name: src_crate.clone(),
                    is_reexport,
                });
                k += 1;
                continue;
            }
            if t.kind == TokenKind::Ident && t.text != "as" && !followed_by_path {
                if decl.get(k + 1).is_some_and(|n| n.text == "as")
                    && decl.get(k + 2).map(|n| n.kind) == Some(TokenKind::Ident)
                {
                    out.push(UseItem {
                        leaf: decl[k + 2].text.clone(),
                        original: t.text.clone(),
                        crate_name: src_crate.clone(),
                        is_reexport,
                    });
                    k += 3;
                    continue;
                }
                // Skip the path-head crate ident itself (`use xfraud_gnn;`
                // still records it as a leaf so bare-crate calls resolve).
                out.push(UseItem {
                    leaf: t.text.clone(),
                    original: t.text.clone(),
                    crate_name: src_crate.clone(),
                    is_reexport,
                });
            }
            k += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn parse(src: &str) -> ParsedFile {
        let sf = SourceFile::from_source(Path::new("crates/demo/src/lib.rs"), src);
        parse_file(&sf, "xfraud_demo")
    }

    #[test]
    fn fns_and_visibility_are_extracted() {
        let p = parse(
            r#"
            pub fn api() { helper(); }
            pub(crate) fn internal() {}
            fn helper() {}
            impl Engine {
                pub fn score(&self) { self.run(); }
                fn run(&self) {}
            }
            "#,
        );
        let names: Vec<_> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["api", "internal", "helper", "score", "run"]);
        assert!(p.fns[0].is_pub);
        assert!(!p.fns[1].is_pub, "pub(crate) is not API surface");
        assert!(!p.fns[2].is_pub);
        assert_eq!(p.fns[3].impl_type.as_deref(), Some("Engine"));
        assert!(p.fns[3].is_pub);
    }

    #[test]
    fn trait_impls_attribute_methods_to_the_self_type() {
        let p = parse(
            r#"
            impl<'a> Sampler for SageSampler<'a> {
                fn sample(&self) { self.walk(); }
            }
            "#,
        );
        assert_eq!(p.fns[0].impl_type.as_deref(), Some("SageSampler"));
    }

    #[test]
    fn calls_are_collected_with_paths() {
        let p = parse(
            r#"
            fn f() {
                helper();
                xfraud_gnn::predict_scores(x);
                Self::assoc(y);
                obj.method_call(z);
                not_a_macro!();
                let v = vec![1];
            }
            "#,
        );
        let calls: Vec<Vec<String>> = p.fns[0].calls.iter().map(|c| c.path.clone()).collect();
        assert!(calls.contains(&vec!["helper".to_string()]));
        assert!(calls.contains(&vec![
            "xfraud_gnn".to_string(),
            "predict_scores".to_string()
        ]));
        assert!(calls.contains(&vec!["Self".to_string(), "assoc".to_string()]));
        assert!(calls.contains(&vec!["method_call".to_string()]));
        assert!(
            !calls.iter().any(|c| c.concat().contains("not_a_macro")),
            "macros are not calls"
        );
    }

    #[test]
    fn nested_fn_calls_attribute_once() {
        let p = parse("fn outer() { fn inner() { leaf(); } inner(); }");
        // `leaf` and `inner` both attribute to `outer` (the nested fn is
        // folded into its parent); no duplicate item exists.
        assert_eq!(p.fns.len(), 1);
        let calls: Vec<String> = p.fns[0].calls.iter().map(|c| c.path.concat()).collect();
        assert_eq!(
            calls.iter().filter(|c| c.as_str() == "leaf").count(),
            1,
            "{calls:?}"
        );
    }

    #[test]
    fn lock_sites_get_canonical_identities_and_nesting() {
        let p = parse(
            r#"
            impl Engine {
                fn swap(&self) {
                    let g = self.graph.write();
                    let d = self.detector.lock();
                    use_both(g, d);
                }
                fn shard(&self, k: usize) {
                    self.shard_of(k).lock().insert(k);
                }
            }
            "#,
        );
        let swap = &p.fns[0];
        assert_eq!(swap.locks.len(), 2);
        assert_eq!(swap.locks[0].id, "xfraud_demo::self.graph");
        assert_eq!(swap.locks[1].id, "xfraud_demo::self.detector");
        assert_eq!(
            swap.locks[1].under_locks,
            vec![0],
            "detector acquired under graph"
        );
        let shard = &p.fns[1];
        assert_eq!(shard.locks[0].id, "xfraud_demo::self.shard_of()");
    }

    #[test]
    fn guard_liveness_covers_calls_until_drop() {
        let p = parse(
            r#"
            fn f(m: &Mutex<u32>) {
                let g = m.lock();
                under_guard();
                drop(g);
                after_guard();
            }
            "#,
        );
        let f = &p.fns[0];
        let under = f.calls.iter().find(|c| c.path[0] == "under_guard").unwrap();
        let after = f.calls.iter().find(|c| c.path[0] == "after_guard").unwrap();
        assert_eq!(under.under_locks, vec![0]);
        assert!(after.under_locks.is_empty());
    }

    #[test]
    fn uses_track_renames_and_reexports() {
        let p = parse(
            "use xfraud_gnn::{predict_scores, Sampler as S};\n\
             pub use xfraud_entropy::now_ms;\n\
             use std::fmt;\n",
        );
        assert!(p
            .uses
            .iter()
            .any(|u| u.leaf == "S" && u.original == "Sampler" && u.crate_name == "xfraud_gnn"));
        let re = p.uses.iter().find(|u| u.leaf == "now_ms").unwrap();
        assert!(re.is_reexport);
        assert_eq!(re.crate_name, "xfraud_entropy");
        assert!(!p.uses.iter().any(|u| u.crate_name == "std"));
    }

    #[test]
    fn fs_events_share_the_call_timeline() {
        let p = parse(
            r#"
            fn persist(&self) {
                let mut f = File::create(&tmp)?;
                f.write_all(image)?;
                f.sync_all()?;
                fs::rename(&tmp, &path)?;
            }
            fn publish_unsynced(&self) {
                fs::rename(&tmp, &path)?;
            }
            "#,
        );
        let persist = &p.fns[0];
        assert_eq!(persist.fs_events.len(), 2, "{:#?}", persist.fs_events);
        assert_eq!(persist.fs_events[0].kind, FsEventKind::Sync);
        assert_eq!(persist.fs_events[1].kind, FsEventKind::Rename);
        assert!(
            persist.fs_events[0].seq < persist.fs_events[1].seq,
            "sync orders before the rename"
        );
        // The rename is also a call site, at the same token position.
        let rename_call = persist
            .calls
            .iter()
            .find(|c| c.path.last().is_some_and(|s| s == "rename"))
            .expect("fs::rename appears as a call");
        assert_eq!(rename_call.seq, persist.fs_events[1].seq);
        let bare = &p.fns[1];
        assert_eq!(bare.fs_events.len(), 1);
        assert_eq!(bare.fs_events[0].kind, FsEventKind::Rename);
    }

    #[test]
    fn test_gated_fns_are_marked() {
        let p =
            parse("#[cfg(test)]\nmod t { fn helper() {} }\n#[test]\nfn a_test() {}\nfn lib() {}");
        let helper = p.fns.iter().find(|f| f.name == "helper").unwrap();
        let a_test = p.fns.iter().find(|f| f.name == "a_test").unwrap();
        let lib = p.fns.iter().find(|f| f.name == "lib").unwrap();
        assert!(helper.is_test);
        assert!(a_test.is_test);
        assert!(!lib.is_test);
    }
}
