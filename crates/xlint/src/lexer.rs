//! A minimal Rust lexer: the token stream the rule visitors walk.
//!
//! The offline build environment has no `syn`, so `xlint` carries its own
//! lexer. It does not build a syntax tree — every rule in this workspace is
//! expressible over a token stream with line numbers and brace depths — but
//! it is *string-accurate*: comments, string/char literals, raw strings and
//! lifetimes are recognised exactly, so a rule never fires on text inside a
//! literal or a comment, and allow directives inside comments are recovered
//! with their line numbers intact.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// Token text. For string/char literals this is the raw source slice
    /// (quotes included); rules never need to interpret literal contents.
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
    /// `{`-nesting depth *at* this token (the `{` itself counts inside).
    pub brace_depth: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`foo`, `fn`, `for`, `r#match`).
    Ident,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Numeric literal.
    Number,
    /// String, raw-string, byte-string or char literal.
    Literal,
    /// Single punctuation character (`.`, `:`, `(`, `{`, …).
    Punct,
}

/// A comment with its position — kept out of the token stream, but scanned
/// for `xlint: allow(...)` directives.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    /// 1-based line of the comment's first character.
    pub line: u32,
    /// 1-based line of the comment's last character (block comments span).
    pub end_line: u32,
}

/// Lexer output: tokens plus the comments that were stripped.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Lexes `src` into tokens and comments. Unterminated literals or comments
/// are tolerated (the remainder is swallowed) — the tool must never panic on
/// the code it audits.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut depth: u32 = 0;

    macro_rules! push_tok {
        ($kind:expr, $start:expr, $end:expr, $line:expr) => {
            out.tokens.push(Token {
                kind: $kind,
                text: src[$start..$end].to_string(),
                line: $line,
                brace_depth: depth,
            })
        };
    }

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            // Line comment (also doc comments).
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    text: src[start..i].to_string(),
                    line,
                    end_line: line,
                });
            }
            // Block comment, nested per Rust rules.
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start = i;
                let start_line = line;
                let mut nest = 1u32;
                i += 2;
                while i < b.len() && nest > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        nest += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        nest -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    text: src[start..i].to_string(),
                    line: start_line,
                    end_line: line,
                });
            }
            // `r"…"`/`b"…"`/`br#"…"#` prefixes are resolved first; what is
            // left over is a plain identifier or keyword.
            c if c == b'_' || c.is_ascii_alphabetic() => {
                if let Some((end, lines)) = try_prefixed_string(src, i) {
                    let start_line = line;
                    line += lines;
                    push_tok!(TokenKind::Literal, i, end, start_line);
                    i = end;
                } else {
                    let start = i;
                    while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                        i += 1;
                    }
                    // `r#ident` raw identifiers: keep the `r#` out so rules
                    // match on the name itself.
                    push_tok!(TokenKind::Ident, start, i, line);
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len()
                    && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'.')
                    && !(b[i] == b'.' && i + 1 < b.len() && b[i + 1] == b'.')
                {
                    i += 1;
                }
                push_tok!(TokenKind::Number, start, i, line);
            }
            b'"' => {
                let (end, lines) = scan_string(src, i, b'"');
                let start_line = line;
                line += lines;
                push_tok!(TokenKind::Literal, i, end, start_line);
                i = end;
            }
            b'\'' => {
                // Char literal vs lifetime: a lifetime is `'` + ident not
                // followed by a closing `'`.
                if let Some(end) = scan_char(src, i) {
                    push_tok!(TokenKind::Literal, i, end, line);
                    i = end;
                } else {
                    let start = i;
                    i += 1;
                    while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                        i += 1;
                    }
                    push_tok!(TokenKind::Lifetime, start, i, line);
                }
            }
            b'{' => {
                depth += 1;
                push_tok!(TokenKind::Punct, i, i + 1, line);
                i += 1;
            }
            b'}' => {
                push_tok!(TokenKind::Punct, i, i + 1, line);
                depth = depth.saturating_sub(1);
                i += 1;
            }
            _ => {
                push_tok!(TokenKind::Punct, i, i + 1, line);
                i += 1;
            }
        }
    }
    out
}

/// If `src[i..]` starts a raw/byte string (`r"`, `r#"`, `b"`, `br#"` …),
/// returns `(end_index, newlines_consumed)`.
fn try_prefixed_string(src: &str, i: usize) -> Option<(usize, u32)> {
    let b = src.as_bytes();
    let mut j = i;
    let mut raw = false;
    if b[j] == b'b' {
        j += 1;
    }
    if j < b.len() && b[j] == b'r' {
        raw = true;
        j += 1;
    }
    if j == i {
        return None;
    }
    if raw {
        let mut hashes = 0usize;
        while j < b.len() && b[j] == b'#' {
            hashes += 1;
            j += 1;
        }
        if j >= b.len() || b[j] != b'"' {
            return None; // `r#ident` raw identifier or plain ident
        }
        j += 1;
        let closer: Vec<u8> = std::iter::once(b'"')
            .chain(std::iter::repeat_n(b'#', hashes))
            .collect();
        let mut lines = 0u32;
        while j < b.len() {
            if b[j] == b'\n' {
                lines += 1;
            }
            if b[j] == b'"'
                && b[j..].len() >= closer.len()
                && &b[j..j + closer.len()] == closer.as_slice()
            {
                return Some((j + closer.len(), lines));
            }
            j += 1;
        }
        Some((b.len(), lines))
    } else {
        // `b"..."` byte string (non-raw).
        if j < b.len() && b[j] == b'"' {
            let (end, lines) = scan_string(src, j, b'"');
            Some((end, lines))
        } else {
            None
        }
    }
}

/// Scans a (non-raw) string starting at the opening quote `src[i]`;
/// returns `(one_past_closing_quote, newlines_consumed)`.
fn scan_string(src: &str, i: usize, quote: u8) -> (usize, u32) {
    let b = src.as_bytes();
    let mut j = i + 1;
    let mut lines = 0u32;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'\n' => {
                lines += 1;
                j += 1;
            }
            c if c == quote => return (j + 1, lines),
            _ => j += 1,
        }
    }
    (b.len(), lines)
}

/// Scans a char literal starting at `src[i] == '\''`; `None` if this is a
/// lifetime instead.
fn scan_char(src: &str, i: usize) -> Option<usize> {
    let b = src.as_bytes();
    let mut j = i + 1;
    if j >= b.len() {
        return None;
    }
    if b[j] == b'\\' {
        j += 2;
        // Escapes like `\u{1F600}`.
        if j <= b.len() && j >= 1 && b.get(j - 1) == Some(&b'u') && b.get(j) == Some(&b'{') {
            while j < b.len() && b[j] != b'}' {
                j += 1;
            }
            j += 1;
        }
        if b.get(j) == Some(&b'\'') {
            return Some(j + 1);
        }
        return None;
    }
    // `'x'` — a single character (possibly multibyte) then a quote.
    let rest = &src[j..];
    let mut chars = rest.char_indices();
    let (_, _first) = chars.next()?;
    let (next_idx, _) = chars.next()?;
    if rest.as_bytes().get(next_idx) == Some(&b'\'') {
        return Some(j + next_idx + 1);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_do_not_leak_tokens() {
        let src = r##"
            // a HashMap in a comment
            /* unwrap() in /* a nested */ block */
            let s = "thread_rng() inside a string";
            let r = r#"SystemTime::now() in a raw string"#;
            let c = 'x';
            real_ident();
        "##;
        let names = idents(src);
        assert!(names.contains(&"real_ident".to_string()));
        assert!(!names
            .iter()
            .any(|n| n == "HashMap" || n == "unwrap" || n == "thread_rng"));
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> &'a str { x }");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 3);
        assert!(lifetimes.iter().all(|t| t.text == "'a"));
    }

    #[test]
    fn brace_depth_and_lines_are_tracked() {
        let src = "fn a() {\n    inner();\n}\nfn b() {}\n";
        let lexed = lex(src);
        let inner = lexed.tokens.iter().find(|t| t.text == "inner").unwrap();
        assert_eq!(inner.line, 2);
        assert_eq!(inner.brace_depth, 1);
        let b = lexed.tokens.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.brace_depth, 0);
    }

    #[test]
    fn escaped_quotes_stay_inside_the_string() {
        let lexed = lex(r#"let s = "a \" b"; after();"#);
        assert!(lexed.tokens.iter().any(|t| t.text == "after"));
    }
}
