//! Integration tests for the interprocedural rules (L2/P2/D3/F1) over the
//! fixture mini-workspace in `tests/fixtures/ws_interproc/`, plus the
//! baseline-determinism properties and the (slow, `--ignored`) whole-
//! workspace graph-construction test.

use std::path::{Path, PathBuf};

use proptest::prelude::*;
use xlint::config::{BaselineEntry, Config};
use xlint::{build_graphs, lint_workspace, LintReport};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws_interproc")
}

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xlint sits two levels under the workspace root")
}

fn fixture_report() -> LintReport {
    let root = fixture_root();
    let cfg = Config::load(&root.join("xlint.toml")).expect("fixture xlint.toml parses");
    lint_workspace(&root, &cfg).expect("fixture scan")
}

#[test]
fn l2_flags_the_three_lock_cycle_with_a_witness_path() {
    let report = fixture_report();
    let l2: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule == "L2")
        .collect();
    assert_eq!(l2.len(), 1, "exactly one cycle (one SCC): {l2:#?}");
    let v = l2[0];
    assert!(
        v.file.starts_with("crates/locks/"),
        "anchored in the cyclic crate: {v:#?}"
    );
    for lock in ["self.a", "self.b", "self.c"] {
        assert!(
            v.message.contains(lock),
            "witness names {lock}: {}",
            v.message
        );
    }
    // The c -> a leg only exists through the `grab_a` call.
    assert!(
        v.message.contains("via call to"),
        "cycle includes the interprocedural edge: {}",
        v.message
    );
}

#[test]
fn l2_does_not_flag_the_consistently_ordered_crate() {
    let report = fixture_report();
    assert!(
        !report
            .violations
            .iter()
            .any(|v| v.rule == "L2" && v.file.starts_with("crates/locks_ok/")),
        "acyclic lock order must stay clean"
    );
}

#[test]
fn p2_flags_the_pub_api_reaching_a_cross_crate_panic_site() {
    let report = fixture_report();
    let api: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule == "P2" && v.file == "crates/libp/src/lib.rs")
        .collect();
    assert_eq!(api.len(), 1, "only `api` is flagged, not `safe`: {api:#?}");
    let msg = &api[0].message;
    assert!(
        msg.contains("xfraud_libp::api"),
        "names the entry point: {msg}"
    );
    assert!(
        msg.contains("xfraud_panico::boom"),
        "witness path reaches the panic site: {msg}"
    );
    assert!(
        msg.contains("crates/panico/src/lib.rs:4"),
        "cites the P1 site: {msg}"
    );
}

#[test]
fn p2_burndown_ranks_the_panic_site_by_pub_fanin() {
    let report = fixture_report();
    let entry = report
        .burndown
        .iter()
        .find(|b| b.file == "crates/panico/src/lib.rs")
        .expect("the fixture panic site appears in the burn-down table");
    // `libp::api` + `panico::boom` itself can reach the site.
    assert_eq!(entry.pub_apis, 2, "{entry:#?}");
}

#[test]
fn d3_flags_the_frontier_call_through_the_reexport() {
    let report = fixture_report();
    let d3: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule == "D3")
        .collect();
    assert_eq!(d3.len(), 1, "one frontier edge, no cascade: {d3:#?}");
    let v = d3[0];
    assert_eq!(v.file, "crates/det/src/lib.rs");
    assert!(v.message.contains("xfraud_det::tick"), "{}", v.message);
    assert!(
        v.message.contains("xfraud_entropy::now_ms"),
        "resolution followed the `pub use` bridge: {}",
        v.message
    );
    assert!(
        v.message.contains("crates/entropy/src/lib.rs:5"),
        "cites the SystemTime::now site: {}",
        v.message
    );
}

#[test]
fn f1_flags_the_unsynced_rename_path_but_not_the_synced_one() {
    let report = fixture_report();
    let f1: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule == "F1")
        .collect();
    assert_eq!(f1.len(), 1, "one unsynced publish path: {f1:#?}");
    let v = f1[0];
    assert_eq!(v.file, "crates/durab/src/lib.rs");
    assert!(
        v.message.contains("unsynced entry: `xfraud_durab::hasty`"),
        "blames the pub entry with no sync anywhere on the path: {}",
        v.message
    );
    // `persist` syncs before renaming and must stay clean — the single
    // finding above anchors on `publish`'s rename, not `persist`'s.
    assert!(
        !v.message.contains("persist"),
        "the synced path is clean: {}",
        v.message
    );
}

#[test]
fn p1_still_fires_inside_the_fixture_workspace() {
    // The P2 roots are live P1 violations; make sure the fixture really
    // produces one (guards the test setup itself).
    let report = fixture_report();
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.rule == "P1" && v.file == "crates/panico/src/lib.rs"),
        "fixture panic site must be a live P1 violation"
    );
}

#[test]
fn check_is_idempotent_once_the_baseline_is_up_to_date() {
    let root = fixture_root();
    let cfg_text = std::fs::read_to_string(root.join("xlint.toml")).expect("fixture config reads");
    let report = fixture_report();
    assert!(!report.violations.is_empty(), "fixture produces findings");

    // Grandfather everything, exactly as `--update-baseline` would.
    let rendered = Config::render_with_baseline(&cfg_text, &report.fresh_baseline());
    let cfg2 = Config::parse(&rendered).expect("rendered config parses");
    let report2 = lint_workspace(&root, &cfg2).expect("second scan");
    assert!(report2.regressions.is_empty(), "{:#?}", report2.regressions);
    assert!(
        report2.improvements.is_empty(),
        "{:#?}",
        report2.improvements
    );

    // Regenerating off the up-to-date tree changes nothing, byte for byte.
    let rendered_again = Config::render_with_baseline(&rendered, &report2.fresh_baseline());
    assert_eq!(
        rendered, rendered_again,
        "--update-baseline must be a fixpoint"
    );
}

fn entry_strategy() -> impl Strategy<Value = BaselineEntry> {
    (
        prop_oneof![
            Just("D1"),
            Just("D2"),
            Just("D3"),
            Just("P1"),
            Just("P2"),
            Just("L1"),
            Just("L2"),
            Just("U1"),
            Just("U2"),
            Just("A1"),
            Just("A2"),
            Just("F1"),
            Just("E1"),
        ],
        prop_oneof![
            Just("crates/serve/src/engine.rs"),
            Just("crates/serve/src/cache.rs"),
            Just("crates/ingest/src/wal.rs"),
            Just("crates/kvstore/src/stores.rs"),
            Just("crates/tensor/src/ops.rs"),
            Just("crates/gnn/src/sampler.rs"),
        ],
        1usize..40,
    )
        .prop_map(|(rule, file, count)| BaselineEntry {
            rule: rule.to_string(),
            file: file.to_string(),
            count,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `--update-baseline` output is a deterministic function of the
    /// violation *set*: input order never matters, rendering is stable
    /// under render → parse → render, and entries come out file-major
    /// sorted so regeneration never produces spurious diffs.
    #[test]
    fn baseline_rendering_is_order_insensitive_and_idempotent(
        entries in prop::collection::vec(entry_strategy(), 0..24),
        seed in any::<u64>(),
    ) {
        // Dedup (rule, file) pairs the way fresh_baseline's map does.
        let mut entries = entries;
        entries.sort();
        entries.dedup_by(|a, b| a.rule == b.rule && a.file == b.file);
        // Shuffle deterministically from the seed: render must not care.
        let mut shuffled = entries.clone();
        let mut state = seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            shuffled.swap(i, (state >> 33) as usize % (i + 1));
        }

        let head = "[rules.p1]\ncrates = [\"serve\"]\n";
        let r1 = Config::render_with_baseline(head, &entries);
        let r_shuffled = Config::render_with_baseline(head, &shuffled);
        prop_assert_eq!(&r1, &r_shuffled, "input order must not affect output");

        let cfg = Config::parse(&r1).expect("rendered baseline parses");
        let r2 = Config::render_with_baseline(&r1, &cfg.baseline);
        prop_assert_eq!(&r1, &r2, "render -> parse -> render is a fixpoint");

        // File-major order in the output text.
        let files: Vec<&str> = r1
            .lines()
            .filter_map(|l| l.strip_prefix("file = \""))
            .map(|l| l.trim_end_matches('"'))
            .collect();
        let mut sorted_files = files.clone();
        sorted_files.sort();
        prop_assert_eq!(files, sorted_files, "entries are grouped by file");
    }
}

/// Slow whole-workspace graph construction: runs in the scheduled CI job
/// (`cargo test -p xlint -- --ignored`), not on every PR.
#[test]
#[ignore = "whole-workspace graph build; run via the scheduled xlint-deep job"]
fn whole_workspace_graphs_are_deterministic_and_sane() {
    let root = workspace_root();
    let (cg1, lg1) = build_graphs(root).expect("first build");
    let (cg2, lg2) = build_graphs(root).expect("second build");
    assert_eq!(
        cg1.to_dot(),
        cg2.to_dot(),
        "call graph DOT must be deterministic"
    );
    assert_eq!(
        lg1.to_dot(),
        lg2.to_dot(),
        "lock graph DOT must be deterministic"
    );

    assert!(
        cg1.fns.len() > 400,
        "the workspace has hundreds of fns, got {}",
        cg1.fns.len()
    );
    let n_edges: usize = cg1.edges.iter().map(|e| e.len()).sum();
    assert!(
        n_edges > 200,
        "expected a dense call graph, got {n_edges} edges"
    );
    assert!(
        lg1.nodes.len() >= 10,
        "serve/ingest/kvstore locks should all be modelled, got {:?}",
        lg1.nodes
    );
    assert!(
        lg1.cycles().is_empty(),
        "the real workspace lock graph must stay acyclic:\n{}",
        lg1.to_dot()
    );
}
