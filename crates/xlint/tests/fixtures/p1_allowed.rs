//! P1 negative fixture: a justified invariant.

pub fn modulo_indexed(xs: &[u32], i: usize) -> u32 {
    let at = i % xs.len();
    // xlint: allow(p1, reason = "index is reduced modulo len on the line above")
    xs[at]
}

pub fn always_some(x: u32) -> u32 {
    // xlint: allow(p1, reason = "checked_add of values < 2^16 cannot overflow u32")
    x.checked_add(1).unwrap()
}
