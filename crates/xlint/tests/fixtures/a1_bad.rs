//! A1 positive fixture: a Relaxed publish on a cross-fn atomic field. The
//! Relaxed counter is deliberately NOT flagged (single modification order).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub struct Flag {
    ready: AtomicBool,
    hits: AtomicU64,
}

impl Flag {
    pub fn publish(&self) {
        self.ready.store(true, Ordering::Relaxed);
    }

    pub fn is_ready(&self) -> bool {
        self.ready.load(Ordering::Acquire)
    }

    /// Pure statistics counter: Relaxed RMWs on one atomic share a single
    /// modification order, so this must stay clean.
    pub fn bump(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
}
