//! E1 negative fixture: a genuinely best-effort discard with an audited
//! allow; macros and named bindings need none.

pub fn best_effort_reply(tx: &std::sync::mpsc::Sender<u32>) {
    // xlint: allow(e1, reason = "a receiver that hung up is not an error on the reply path")
    let _ = tx.send(7);
}

pub fn macro_rhs_is_fine() {
    let _ = format!("macros are skipped");
}

pub fn named_binding_is_fine() -> u32 {
    let _hint = "42".len();
    7
}
