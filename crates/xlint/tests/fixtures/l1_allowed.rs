//! L1 negative fixture: recovery instead of poison unwrap, and a justified
//! cross-crate call under a lock.
use std::sync::{Mutex, PoisonError};

use xfraud_gnn::predict_scores;

pub struct Engine {
    state: Mutex<Vec<u32>>,
}

impl Engine {
    pub fn recovered(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    pub fn justified(&self) -> usize {
        let g = self.state.lock();
        // xlint: allow(l1, reason = "predict_scores is lock-free and O(1) here")
        let n = predict_scores();
        g.len() + n
    }
}
