//! P1 positive fixture: panicking escape hatches in library code.

pub fn risky(xs: &[u32]) -> u32 {
    let first = xs.first().unwrap();
    let second = xs.get(1).expect("has two");
    if *first > 10 {
        panic!("too big");
    }
    match second {
        0 => unreachable!("checked above"),
        _ => *second,
    }
}

pub fn indexed(xs: &[u32]) -> u32 {
    xs[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(risky(&[1, 2]), 2);
        let _ = "7".parse::<u32>().unwrap();
    }
}
