//! L1 positive fixture: poison unwrap + guard held across a workspace call.
use std::sync::Mutex;

use xfraud_gnn::predict_scores;

pub struct Engine {
    state: Mutex<Vec<u32>>,
}

impl Engine {
    pub fn poison_propagation(&self) -> usize {
        self.state.lock().unwrap().len()
    }

    pub fn guard_across_crate_call(&self) -> usize {
        let g = self.state.lock();
        let n = predict_scores();
        g.len() + n
    }

    pub fn dropped_before_call(&self) -> usize {
        let g = self.state.lock();
        let n = g.len();
        drop(g);
        n + predict_scores()
    }
}
