//! D2 positive fixture: every kind of ambient nondeterminism.

pub fn entropy_everywhere() -> u64 {
    let mut _rng = rand::thread_rng();
    let _r: u64 = rand::random();
    let _t = std::time::SystemTime::now();
    let _i = std::time::Instant::now();
    let _home = std::env::var("XFRAUD_SCALE");
    0
}

pub fn seeded_is_fine(seed: u64) -> u64 {
    seed.wrapping_mul(0x9e3779b97f4a7c15)
}

#[cfg(test)]
mod tests {
    #[test]
    fn clocks_in_tests_are_fine() {
        let _ = std::time::Instant::now();
    }
}
