//! D1 negative fixture: the same iteration, justified inline.
use std::collections::HashMap;

pub fn stats(m: &HashMap<u32, f32>) -> f32 {
    // xlint: allow(d1, reason = "order-insensitive float max over disjoint keys")
    m.values().fold(f32::NEG_INFINITY, |a, &b| a.max(b))
}

pub fn hist(m: &HashMap<u32, u64>) -> u64 {
    m.values().copied().sum() // xlint: allow(d1, reason = "integer sum is order-insensitive")
}
