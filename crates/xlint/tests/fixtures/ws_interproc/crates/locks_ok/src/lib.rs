//! L2 negative fixture: the same three locks, always acquired in the
//! global order `a` → `b` → `c`. No cycle, no finding.

pub struct Trio {
    a: Mutex<u32>,
    b: Mutex<u32>,
    c: Mutex<u32>,
}

impl Trio {
    pub fn abc(&self) {
        let ga = self.a.lock();
        let gb = self.b.lock();
        let gc = self.c.lock();
        consume(ga, gb, gc);
    }

    pub fn bc(&self) {
        let gb = self.b.lock();
        self.grab_c();
        consume(gb, 0);
    }

    fn grab_c(&self) {
        let gc = self.c.lock();
        consume(gc, 0);
    }
}
