//! D3 fixture: the nondeterminism source, in a crate outside the
//! determinism scope (like the real `metrics`/`bench` crates).

pub fn now_ms() -> u64 {
    let t = std::time::SystemTime::now();
    to_millis(t)
}
