//! L2 positive fixture: three locks acquired in a cycle — `a` before
//! `b`, `b` before `c`, and (through a helper call, so the edge is
//! interprocedural) `c` before `a`.

pub struct Trio {
    a: Mutex<u32>,
    b: Mutex<u32>,
    c: Mutex<u32>,
}

impl Trio {
    pub fn ab(&self) {
        let ga = self.a.lock();
        let gb = self.b.lock();
        consume(ga, gb);
    }

    pub fn bc(&self) {
        let gb = self.b.lock();
        let gc = self.c.lock();
        consume(gb, gc);
    }

    pub fn ca(&self) {
        let gc = self.c.lock();
        self.grab_a();
        consume(gc, 0);
    }

    fn grab_a(&self) {
        let ga = self.a.lock();
        consume(ga, 0);
    }
}
