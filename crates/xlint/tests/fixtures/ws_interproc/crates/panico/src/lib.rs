//! P2 fixture: a crate exposing a panic site (a live P1 violation).

pub fn boom(v: &[u32]) -> u32 {
    v.first().copied().unwrap()
}
