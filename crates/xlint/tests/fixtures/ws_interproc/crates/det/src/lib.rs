//! D3 fixture: a determinism-critical crate calling the tainted
//! re-export — the frontier edge the rule must flag.

pub fn tick() -> u64 {
    xfraud_midx::now_ms()
}

/// Calls nothing tainted — must not be flagged.
pub fn pure() -> u64 {
    21
}
