//! F1 fixture: `persist` follows write-temp→fsync→rename and is clean;
//! `hasty` publishes through the `publish` helper with no fsync anywhere
//! on the path and must be flagged with itself as the unsynced entry.

use std::fs;
use std::fs::File;
use std::path::Path;

pub fn persist(tmp: &Path, fin: &Path) -> std::io::Result<()> {
    let f = File::create(tmp)?;
    f.sync_all()?;
    fs::rename(tmp, fin)?;
    Ok(())
}

pub fn hasty(tmp: &Path, fin: &Path) -> std::io::Result<()> {
    publish(tmp, fin)
}

fn publish(tmp: &Path, fin: &Path) -> std::io::Result<()> {
    fs::rename(tmp, fin)?;
    Ok(())
}
