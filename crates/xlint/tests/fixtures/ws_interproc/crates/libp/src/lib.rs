//! P2 fixture: a library whose pub API reaches `xfraud_panico::boom`
//! through a private helper — cross-crate panic reachability.

pub fn api() -> u32 {
    helper()
}

fn helper() -> u32 {
    xfraud_panico::boom(&[1, 2])
}

/// Does NOT reach the panic site — must not be flagged.
pub fn safe() -> u32 {
    7
}
