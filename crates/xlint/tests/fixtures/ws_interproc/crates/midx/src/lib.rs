//! D3 fixture: re-export bridge — taint must flow through `pub use`
//! without `midx` defining anything itself.

pub use xfraud_entropy::now_ms;
