//! A2 positive fixture: asymmetric store/load ordering pairs on one field —
//! each half of a release/acquire pairing missing its counterpart.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

pub struct Seqs {
    /// Stored with Release, read with Relaxed: acquire half missing.
    head: AtomicU64,
    /// Stored with Relaxed, read with Acquire: release half missing.
    tail: AtomicUsize,
}

impl Seqs {
    pub fn advance_head(&self, v: u64) {
        self.head.store(v, Ordering::Release);
    }

    pub fn head(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    pub fn advance_tail(&self, v: usize) {
        self.tail.store(v, Ordering::Relaxed);
    }

    pub fn tail(&self) -> usize {
        self.tail.load(Ordering::Acquire)
    }
}
