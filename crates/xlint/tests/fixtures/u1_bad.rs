//! U1 positive fixture: `unsafe` without an adjacent SAFETY justification.

pub fn no_comment(p: *const u32) -> u32 {
    unsafe { *p }
}

pub fn wrong_comment(p: *const u32) -> u32 {
    // dereference the pointer (not a safety argument)
    unsafe { *p }
}

/// An exported raw-pointer write documenting nothing about its contract.
pub unsafe fn exported_raw(p: *mut u8) {
    *p = 0;
}

#[cfg(test)]
mod tests {
    #[test]
    fn unsafe_in_tests_is_exempt() {
        let x = 7u32;
        assert_eq!(unsafe { *(&x as *const u32) }, 7);
    }
}
