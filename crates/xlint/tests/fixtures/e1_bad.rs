//! E1 positive fixture: `let _ =` swallowing call results (and their
//! errors). Named discards and non-call RHS stay clean.

pub fn swallow_send(tx: &std::sync::mpsc::Sender<u32>) {
    let _ = tx.send(1);
}

pub fn swallow_helper() {
    let _ = fallible();
}

fn fallible() -> Result<(), std::io::Error> {
    Ok(())
}

pub fn named_discard_is_fine() {
    // The binding is named, so the discard is visibly deliberate.
    let _elapsed = fallible();
}

pub fn plain_value_is_fine(v: u32) {
    let _ = v;
}

#[cfg(test)]
mod tests {
    #[test]
    fn discards_in_tests_are_exempt() {
        let (tx, _rx) = std::sync::mpsc::channel();
        let _ = tx.send(1u32);
    }
}
