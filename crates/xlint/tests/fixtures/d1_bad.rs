//! D1 positive fixture: hash-collection iteration, three ways.
use std::collections::{HashMap, HashSet};

pub fn leak_order(m: &HashMap<u32, f32>) -> Vec<f32> {
    let mut out = Vec::new();
    for v in m.values() {
        out.push(*v);
    }
    out
}

pub struct Overlay {
    index: HashMap<usize, Vec<usize>>,
}

impl Overlay {
    pub fn walk(&self) -> usize {
        self.index.values().map(Vec::len).sum()
    }
}

pub fn drain_set(s: &mut HashSet<u64>) -> Vec<u64> {
    s.drain().collect()
}

pub fn lookup_is_fine(m: &HashMap<u32, f32>, k: u32) -> Option<f32> {
    m.get(&k).copied()
}

pub fn vec_iteration_is_fine(xs: &[u32]) -> u32 {
    xs.iter().sum()
}
