//! A1 negative fixture: release publishes are clean; a deliberate Relaxed
//! publish carries an audited allow.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

pub struct Gate {
    open: AtomicBool,
    generation: AtomicUsize,
}

impl Gate {
    pub fn open(&self) {
        self.open.store(true, Ordering::Release);
    }

    pub fn is_open(&self) -> bool {
        self.open.load(Ordering::Acquire)
    }

    pub fn retire(&self) {
        // xlint: allow(a1, reason = "generation only gates a best-effort cache probe; stale reads are re-validated under the lock")
        self.generation.store(0, Ordering::Relaxed);
    }

    pub fn generation(&self) -> usize {
        self.generation.load(Ordering::Relaxed)
    }
}
