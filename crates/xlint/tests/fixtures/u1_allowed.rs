//! U1 negative fixture: every form of accepted justification, plus one
//! audited allow.

pub fn documented(p: *const u32) -> u32 {
    // SAFETY: the caller contract guarantees `p` points to a live u32.
    unsafe { *p }
}

pub fn trailing(p: *const u32) -> u32 {
    unsafe { *p } // SAFETY: same caller contract as `documented`.
}

pub fn multi_line(p: *const u32) -> u32 {
    // The deref is sound here:
    // SAFETY: `p` was derived from a reference two frames up and the
    // borrow is still live for the duration of this call.
    unsafe { *p }
}

/// Writes zero through `p`.
///
/// # Safety
/// `p` must be valid for writes of one byte.
pub unsafe fn doc_safety(p: *mut u8) {
    *p = 0;
}

pub fn audited(p: *const u32) -> u32 {
    // xlint: allow(u1, reason = "fixture exercises the allow path; real code should write SAFETY")
    unsafe { *p }
}
