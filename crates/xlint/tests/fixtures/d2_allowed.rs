//! D2 negative fixture: telemetry clock reads, justified inline.

pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    // xlint: allow(d2, reason = "wall-clock telemetry only; never feeds an artefact")
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}
