//! A2 negative fixture: symmetric pairings are clean; a deliberate
//! asymmetric read carries an audited allow.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Counter {
    epoch: AtomicU64,
}

impl Counter {
    pub fn publish(&self, v: u64) {
        self.epoch.store(v, Ordering::Release);
    }

    pub fn read(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    pub fn peek_hint(&self) -> u64 {
        // xlint: allow(a2, reason = "monotonic hint for a progress bar; the synchronized read() is what correctness uses")
        self.epoch.load(Ordering::Relaxed)
    }
}
