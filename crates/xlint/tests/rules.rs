//! Fixture-based rule tests: one positive and one allow-suppressed negative
//! fixture per rule. Each positive fixture would pass if its rule were
//! deleted — these tests are what "the rule exists" means.

use std::path::Path;

use xlint::rules::{
    check_a1, check_a2, check_d1, check_d2, check_e1, check_l1, check_p1, check_u1, P1Options,
    Violation,
};
use xlint::source::SourceFile;

fn parse(name: &str, src: &str) -> SourceFile {
    SourceFile::from_source(Path::new(name), src)
}

/// The driver's allow-filtering, reproduced for direct rule tests: returns
/// `(live, suppressed)` violation counts.
fn split_allows(sf: &SourceFile, violations: Vec<Violation>) -> (Vec<Violation>, usize) {
    let mut live = Vec::new();
    let mut suppressed = 0usize;
    for v in violations {
        if sf.allowed(v.rule, v.line).is_some() {
            suppressed += 1;
        } else {
            live.push(v);
        }
    }
    (live, suppressed)
}

#[test]
fn d1_flags_hash_iteration_but_not_lookup() {
    let sf = parse("d1_bad.rs", include_str!("fixtures/d1_bad.rs"));
    let v = check_d1(&sf);
    assert_eq!(v.len(), 3, "{v:#?}");
    assert!(v.iter().all(|v| v.rule == "D1"));
    assert!(v[0].message.contains("m.values()"), "{}", v[0].message);
    assert!(v.iter().any(|v| v.message.contains("index.values()")));
    assert!(v.iter().any(|v| v.message.contains("s.drain()")));
}

#[test]
fn d1_allow_directives_suppress_with_reasons() {
    let sf = parse("d1_allowed.rs", include_str!("fixtures/d1_allowed.rs"));
    let (live, suppressed) = split_allows(&sf, check_d1(&sf));
    assert!(live.is_empty(), "{live:#?}");
    assert_eq!(suppressed, 2);
    assert!(sf.allows.iter().all(|a| a.reason.is_some()));
}

#[test]
fn d2_flags_ambient_nondeterminism_outside_tests() {
    let sf = parse("d2_bad.rs", include_str!("fixtures/d2_bad.rs"));
    let v = check_d2(&sf);
    assert_eq!(v.len(), 5, "{v:#?}");
    let text = v
        .iter()
        .map(|v| v.message.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    for what in [
        "thread_rng()",
        "rand::random()",
        "SystemTime::now()",
        "Instant::now()",
        "std::env",
    ] {
        assert!(text.contains(what), "missing {what} in:\n{text}");
    }
}

#[test]
fn d2_allow_covers_the_next_line() {
    let sf = parse("d2_allowed.rs", include_str!("fixtures/d2_allowed.rs"));
    let (live, suppressed) = split_allows(&sf, check_d2(&sf));
    assert!(live.is_empty(), "{live:#?}");
    assert_eq!(suppressed, 1);
}

#[test]
fn p1_flags_panics_and_optin_indexing_outside_tests() {
    let sf = parse("p1_bad.rs", include_str!("fixtures/p1_bad.rs"));
    let without_indexing = check_p1(&sf, P1Options { indexing: false });
    assert_eq!(without_indexing.len(), 4, "{without_indexing:#?}");
    let with_indexing = check_p1(&sf, P1Options { indexing: true });
    assert_eq!(with_indexing.len(), 5, "{with_indexing:#?}");
    assert!(with_indexing.iter().any(|v| v.message.contains("indexing")));
}

#[test]
fn p1_allows_suppress_justified_invariants() {
    let sf = parse("p1_allowed.rs", include_str!("fixtures/p1_allowed.rs"));
    let (live, suppressed) = split_allows(&sf, check_p1(&sf, P1Options { indexing: true }));
    assert!(live.is_empty(), "{live:#?}");
    assert_eq!(suppressed, 2);
}

#[test]
fn l1_flags_poison_unwrap_and_guard_across_workspace_call() {
    let sf = parse("l1_bad.rs", include_str!("fixtures/l1_bad.rs"));
    let v = check_l1(&sf);
    assert_eq!(v.len(), 2, "{v:#?}");
    assert!(v
        .iter()
        .any(|v| v.message.contains("propagates lock poison")));
    assert!(v.iter().any(|v| v.message.contains("predict_scores")));
}

#[test]
fn l1_recovery_and_justified_calls_are_clean() {
    let sf = parse("l1_allowed.rs", include_str!("fixtures/l1_allowed.rs"));
    let (live, suppressed) = split_allows(&sf, check_l1(&sf));
    assert!(live.is_empty(), "{live:#?}");
    assert_eq!(suppressed, 1, "the justified cross-crate call is audited");
}

#[test]
fn u1_flags_unjustified_unsafe_outside_tests() {
    let sf = parse("u1_bad.rs", include_str!("fixtures/u1_bad.rs"));
    let v = check_u1(&sf);
    assert_eq!(v.len(), 3, "{v:#?}");
    assert!(v.iter().all(|v| v.rule == "U1"));
    // A comment that is not a safety argument does not count as one.
    assert!(v.iter().any(|v| v.line == 9), "{v:#?}");
}

#[test]
fn u1_accepts_safety_comments_doc_sections_and_allows() {
    let sf = parse("u1_allowed.rs", include_str!("fixtures/u1_allowed.rs"));
    let (live, suppressed) = split_allows(&sf, check_u1(&sf));
    assert!(live.is_empty(), "{live:#?}");
    assert_eq!(suppressed, 1, "exactly one site leans on an audited allow");
}

#[test]
fn a1_flags_relaxed_publish_but_exempts_pure_counters() {
    let sf = parse("a1_bad.rs", include_str!("fixtures/a1_bad.rs"));
    let v = check_a1(&sf);
    assert_eq!(v.len(), 1, "{v:#?}");
    assert_eq!(v[0].rule, "A1");
    assert!(v[0].message.contains("self.ready"), "{}", v[0].message);
}

#[test]
fn a1_sync_orderings_and_audited_relaxed_are_clean() {
    let sf = parse("a1_allowed.rs", include_str!("fixtures/a1_allowed.rs"));
    let (live, suppressed) = split_allows(&sf, check_a1(&sf));
    assert!(live.is_empty(), "{live:#?}");
    assert_eq!(suppressed, 1);
}

#[test]
fn a2_flags_asymmetric_store_load_pairs_on_both_sides() {
    let sf = parse("a2_bad.rs", include_str!("fixtures/a2_bad.rs"));
    let v = check_a2(&sf);
    assert_eq!(v.len(), 2, "{v:#?}");
    assert!(v.iter().all(|v| v.rule == "A2"));
    let text = v
        .iter()
        .map(|v| v.message.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(text.contains("acquire half"), "{text}");
    assert!(text.contains("release half"), "{text}");
}

#[test]
fn a2_symmetric_pairs_and_audited_hints_are_clean() {
    let sf = parse("a2_allowed.rs", include_str!("fixtures/a2_allowed.rs"));
    let (live, suppressed) = split_allows(&sf, check_a2(&sf));
    assert!(live.is_empty(), "{live:#?}");
    assert_eq!(suppressed, 1);
}

#[test]
fn e1_flags_underscore_discarded_call_results() {
    let sf = parse("e1_bad.rs", include_str!("fixtures/e1_bad.rs"));
    let v = check_e1(&sf);
    assert_eq!(v.len(), 2, "{v:#?}");
    assert!(v.iter().all(|v| v.rule == "E1"));
    assert!(v.iter().any(|v| v.message.contains("`send(…)`")), "{v:#?}");
    assert!(
        v.iter().any(|v| v.message.contains("`fallible(…)`")),
        "{v:#?}"
    );
}

#[test]
fn e1_named_bindings_macros_and_audited_discards_are_clean() {
    let sf = parse("e1_allowed.rs", include_str!("fixtures/e1_allowed.rs"));
    let (live, suppressed) = split_allows(&sf, check_e1(&sf));
    assert!(live.is_empty(), "{live:#?}");
    assert_eq!(suppressed, 1);
}
