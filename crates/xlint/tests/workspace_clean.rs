//! The CI contract: `cargo run -p xlint -- --check` is clean against the
//! committed baseline, the baseline is *exact* (no stale entries — burn-down
//! must be recorded), and every inline allow carries a reason.

use std::path::Path;

use xlint::config::Config;
use xlint::lint_workspace;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xlint sits two levels under the workspace root")
}

#[test]
fn xlint_check_is_clean_against_the_committed_baseline() {
    let root = workspace_root();
    let cfg = Config::load(&root.join("xlint.toml")).expect("xlint.toml parses");
    let report = lint_workspace(root, &cfg).expect("workspace scan");
    assert!(
        report.regressions.is_empty(),
        "new violations above the baseline:\n{:#?}",
        report.regressions
    );
    assert!(
        report.improvements.is_empty(),
        "baseline is stale — run `cargo run -p xlint -- --update-baseline` and commit:\n{:#?}",
        report.improvements
    );
}

/// The ratchet floor: PR 6 burned the grandfathered P1/L1 baseline down
/// from 34 violations to 25, and the soundness-rules PR burned it to 17
/// (total constructors for gnn masks/targets, an infallible empty graph,
/// `total_cmp` in the rule miner). The committed baseline may only shrink
/// from here — regrowing it (grandfathering *new* panic sites or lock-
/// discipline violations instead of fixing them) fails CI.
#[test]
fn p1_l1_baseline_only_shrinks() {
    let root = workspace_root();
    let cfg = Config::load(&root.join("xlint.toml")).expect("xlint.toml parses");
    let grandfathered: usize = cfg
        .baseline
        .iter()
        .filter(|e| e.rule == "P1" || e.rule == "L1")
        .map(|e| e.count)
        .sum();
    assert!(
        grandfathered <= 17,
        "P1/L1 baseline grew to {grandfathered} violations (ceiling 17) — fix new \
         findings instead of grandfathering them, or lower this ceiling after a burn-down"
    );
}

#[test]
fn every_inline_allow_carries_a_reason() {
    let root = workspace_root();
    let cfg = Config::load(&root.join("xlint.toml")).expect("xlint.toml parses");
    let report = lint_workspace(root, &cfg).expect("workspace scan");
    let missing: Vec<_> = report
        .suppressed
        .iter()
        .filter(|s| s.reason.is_none())
        .map(|s| format!("{}:{}", s.violation.file, s.violation.line))
        .collect();
    assert!(missing.is_empty(), "allows without reasons: {missing:#?}");
}
