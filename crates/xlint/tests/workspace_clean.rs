//! The CI contract: `cargo run -p xlint -- --check` is clean against the
//! committed baseline, the baseline is *exact* (no stale entries — burn-down
//! must be recorded), and every inline allow carries a reason.

use std::path::Path;

use xlint::config::Config;
use xlint::lint_workspace;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xlint sits two levels under the workspace root")
}

#[test]
fn xlint_check_is_clean_against_the_committed_baseline() {
    let root = workspace_root();
    let cfg = Config::load(&root.join("xlint.toml")).expect("xlint.toml parses");
    let report = lint_workspace(root, &cfg).expect("workspace scan");
    assert!(
        report.regressions.is_empty(),
        "new violations above the baseline:\n{:#?}",
        report.regressions
    );
    assert!(
        report.improvements.is_empty(),
        "baseline is stale — run `cargo run -p xlint -- --update-baseline` and commit:\n{:#?}",
        report.improvements
    );
}

#[test]
fn every_inline_allow_carries_a_reason() {
    let root = workspace_root();
    let cfg = Config::load(&root.join("xlint.toml")).expect("xlint.toml parses");
    let report = lint_workspace(root, &cfg).expect("workspace scan");
    let missing: Vec<_> = report
        .suppressed
        .iter()
        .filter(|s| s.reason.is_none())
        .map(|s| format!("{}:{}", s.violation.file, s.violation.line))
        .collect();
    assert!(missing.is_empty(), "allows without reasons: {missing:#?}");
}
