//! Cross-module training-dynamics tests for the nn crate: layers compose,
//! optimizers behave, sessions stay independent.

use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xfraud_nn::{AdamW, Embedding, Ffn, Layer, LayerNorm, Linear, ParamStore, Session};
use xfraud_tensor::Tensor;

/// A 2-layer MLP must fit XOR — the classic nonlinearity check for the
/// whole layer/optimizer stack.
#[test]
fn mlp_learns_xor() {
    let mut rng = StdRng::seed_from_u64(3);
    let mut store = ParamStore::new();
    let l1 = Linear::new(&mut store, "l1", 2, 8, true, &mut rng);
    let l2 = Linear::new(&mut store, "l2", 8, 2, true, &mut rng);
    let x = Tensor::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
    let labels = Rc::new(vec![0usize, 1, 1, 0]);
    let mut opt = AdamW::new(5e-2).with_weight_decay(0.0).with_clip(None);
    let mut last = f32::INFINITY;
    for _ in 0..300 {
        let mut sess = Session::new();
        let xv = sess.constant(x.clone());
        let h = l1.forward(&mut sess, &store, xv);
        let h = sess.tape.relu(h);
        let logits = l2.forward(&mut sess, &store, h);
        let loss = sess.tape.softmax_cross_entropy(logits, Rc::clone(&labels));
        last = sess.tape.value(loss).item();
        let grads = sess.backward(loss);
        opt.step(&mut store, &grads);
    }
    assert!(last < 0.05, "XOR loss stuck at {last}");
}

#[test]
fn layer_norm_then_linear_backprop_is_finite() {
    let mut rng = StdRng::seed_from_u64(4);
    let mut store = ParamStore::new();
    let ln = LayerNorm::new(&mut store, "ln", 6);
    let lin = Linear::new(&mut store, "lin", 6, 3, true, &mut rng);
    let mut sess = Session::new();
    // Extreme inputs: layer norm must tame them before the linear.
    let x = sess.constant(Tensor::from_rows(&[&[1e4, -1e4, 5e3, 0.0, 1.0, -2.0]]));
    let h = ln.forward(&mut sess, &store, x);
    let y = lin.forward(&mut sess, &store, h);
    let sq = sess.tape.mul(y, y);
    let loss = sess.tape.sum_all(sq);
    let grads = sess.backward(loss);
    for (_, g) in grads {
        assert!(
            g.data().iter().all(|v| v.is_finite()),
            "non-finite gradient"
        );
    }
}

#[test]
fn embedding_rows_specialize_during_training() {
    // Two classes keyed purely by an id looked up in an embedding: the two
    // rows must separate.
    let mut rng = StdRng::seed_from_u64(5);
    let mut store = ParamStore::new();
    let emb = Embedding::glorot(&mut store, "emb", 2, 4, &mut rng);
    let head = Linear::new(&mut store, "head", 4, 2, true, &mut rng);
    let ids = vec![0usize, 1, 0, 1];
    let labels = Rc::new(vec![0usize, 1, 0, 1]);
    let mut opt = AdamW::new(5e-2).with_weight_decay(0.0);
    for _ in 0..200 {
        let mut sess = Session::new();
        let h = emb.forward_ids(&mut sess, &store, &ids);
        let logits = head.forward(&mut sess, &store, h);
        let loss = sess.tape.softmax_cross_entropy(logits, Rc::clone(&labels));
        let grads = sess.backward(loss);
        opt.step(&mut store, &grads);
    }
    let table = store.value(emb.table);
    let dist: f32 = table
        .row(0)
        .iter()
        .zip(table.row(1))
        .map(|(a, b)| (a - b) * (a - b))
        .sum();
    assert!(dist > 0.1, "embedding rows failed to separate: {dist}");
}

#[test]
fn ffn_with_dropout_still_converges_in_train_mode() {
    let mut rng = StdRng::seed_from_u64(6);
    let mut store = ParamStore::new();
    let ffn = Ffn::new(&mut store, "f", 4, 16, 2, 2, 0.2, &mut rng);
    let mut data_rng = StdRng::seed_from_u64(7);
    let mut opt = AdamW::new(1e-2).with_weight_decay(0.0);
    let mut final_loss = f32::INFINITY;
    for _ in 0..250 {
        // Linearly separable stream: label = sign of x0.
        let mut x = Tensor::zeros(16, 4);
        let mut y = Vec::with_capacity(16);
        for r in 0..16 {
            let v: f32 = data_rng.gen_range(-1.0..1.0);
            x.set(r, 0, v);
            x.set(r, 1, data_rng.gen_range(-1.0..1.0));
            y.push(usize::from(v > 0.0));
        }
        let mut sess = Session::new();
        let xv = sess.constant(x);
        let logits = ffn.forward(&mut sess, &store, xv, true, &mut data_rng);
        let loss = sess.tape.softmax_cross_entropy(logits, Rc::new(y));
        final_loss = sess.tape.value(loss).item();
        let grads = sess.backward(loss);
        opt.step(&mut store, &grads);
    }
    assert!(
        final_loss < 0.4,
        "dropout-trained FFN stuck at {final_loss}"
    );
}

#[test]
fn adamw_steps_are_deterministic() {
    let run = || {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::full(1, 3, 1.0));
        let mut opt = AdamW::new(1e-2);
        for i in 0..10 {
            let g = Tensor::full(1, 3, (i % 3) as f32 - 1.0);
            opt.step(&mut store, &[(w, g)]);
        }
        store.value(w).clone()
    };
    assert_eq!(run(), run());
}

#[test]
fn param_store_name_and_size_accounting() {
    let mut rng = StdRng::seed_from_u64(8);
    let mut store = ParamStore::new();
    let lin = Linear::new(&mut store, "probe", 3, 5, true, &mut rng);
    assert_eq!(store.name(lin.w), "probe.w");
    assert_eq!(store.n_scalars(), 3 * 5 + 5);
    assert_eq!(store.len(), 2);
    assert!(store.ids().all(|id| store.owns(id)));
}
