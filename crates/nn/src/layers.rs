use rand::rngs::StdRng;

use xfraud_tensor::{Tensor, Var};

use crate::param::{ParamId, ParamStore, Session};

/// A layer that maps one tape variable to another.
pub trait Layer {
    fn forward(&self, sess: &mut Session, store: &ParamStore, x: Var) -> Var;
}

/// Fully-connected layer `y = x W (+ b)`.
#[derive(Debug, Clone)]
pub struct Linear {
    pub w: ParamId,
    pub b: Option<ParamId>,
}

impl Linear {
    /// Glorot-uniform weight, zero bias.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        d_in: usize,
        d_out: usize,
        bias: bool,
        rng: &mut StdRng,
    ) -> Self {
        let w = store.register(
            format!("{name}.w"),
            Tensor::glorot_uniform(d_in, d_out, rng),
        );
        let b = bias.then(|| store.register(format!("{name}.b"), Tensor::zeros(1, d_out)));
        Linear { w, b }
    }
}

impl Layer for Linear {
    fn forward(&self, sess: &mut Session, store: &ParamStore, x: Var) -> Var {
        let w = sess.param(store, self.w);
        let y = sess.tape.matmul(x, w);
        match self.b {
            Some(b) => {
                let b = sess.param(store, b);
                sess.tape.add_row(y, b)
            }
            None => y,
        }
    }
}

/// Row-wise layer normalisation with learnable gain and bias.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    pub gain: ParamId,
    pub bias: ParamId,
    pub eps: f32,
}

impl LayerNorm {
    pub fn new(store: &mut ParamStore, name: &str, dim: usize) -> Self {
        LayerNorm {
            gain: store.register(format!("{name}.gain"), Tensor::full(1, dim, 1.0)),
            bias: store.register(format!("{name}.bias"), Tensor::zeros(1, dim)),
            eps: 1e-5,
        }
    }
}

impl Layer for LayerNorm {
    fn forward(&self, sess: &mut Session, store: &ParamStore, x: Var) -> Var {
        let gain = sess.param(store, self.gain);
        let bias = sess.param(store, self.bias);
        sess.tape.layer_norm(x, gain, bias, self.eps)
    }
}

/// A lookup table of `n` rows; `forward_ids` gathers rows by index.
///
/// Node-type and edge-type embeddings use this. Per §3.2.2 the type
/// embeddings are initialised *with zero weights* — the paper's own detail —
/// so [`Embedding::zeros`] is the constructor the detector uses.
#[derive(Debug, Clone)]
pub struct Embedding {
    pub table: ParamId,
}

impl Embedding {
    /// Zero-initialised table (the paper's choice for type embeddings).
    pub fn zeros(store: &mut ParamStore, name: &str, n: usize, dim: usize) -> Self {
        Embedding {
            table: store.register(name, Tensor::zeros(n, dim)),
        }
    }

    /// Glorot-initialised table (for ablations).
    pub fn glorot(
        store: &mut ParamStore,
        name: &str,
        n: usize,
        dim: usize,
        rng: &mut StdRng,
    ) -> Self {
        Embedding {
            table: store.register(name, Tensor::glorot_uniform(n, dim, rng)),
        }
    }

    /// Gathers embedding rows for the given indices.
    pub fn forward_ids(&self, sess: &mut Session, store: &ParamStore, ids: &[usize]) -> Var {
        let table = sess.param(store, self.table);
        sess.tape.gather_rows(table, std::rc::Rc::new(ids.to_vec()))
    }
}

/// The detector's prediction head (§3.2.1 step 3): a feed-forward network
/// with two hidden layers, each followed by dropout, layer norm and ReLU,
/// then a final projection to class logits.
#[derive(Debug, Clone)]
pub struct Ffn {
    hidden: Vec<(Linear, LayerNorm)>,
    out: Linear,
    pub dropout: f32,
}

impl Ffn {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        d_in: usize,
        d_hidden: usize,
        n_hidden: usize,
        d_out: usize,
        dropout: f32,
        rng: &mut StdRng,
    ) -> Self {
        let mut hidden = Vec::with_capacity(n_hidden);
        let mut d = d_in;
        for i in 0..n_hidden {
            let lin = Linear::new(store, &format!("{name}.h{i}"), d, d_hidden, true, rng);
            let ln = LayerNorm::new(store, &format!("{name}.ln{i}"), d_hidden);
            hidden.push((lin, ln));
            d = d_hidden;
        }
        let out = Linear::new(store, &format!("{name}.out"), d, d_out, true, rng);
        Ffn {
            hidden,
            out,
            dropout,
        }
    }

    /// Forward pass; `rng`/`train` control dropout.
    pub fn forward(
        &self,
        sess: &mut Session,
        store: &ParamStore,
        mut x: Var,
        train: bool,
        rng: &mut StdRng,
    ) -> Var {
        for (lin, ln) in &self.hidden {
            x = lin.forward(sess, store, x);
            if train && self.dropout > 0.0 {
                x = sess.tape.dropout(x, self.dropout, rng);
            }
            x = ln.forward(sess, store, x);
            x = sess.tape.relu(x);
        }
        self.out.forward(sess, store, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::rc::Rc;

    #[test]
    fn linear_matches_manual_matmul() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "l", 3, 2, true, &mut rng);
        // Overwrite with known weights.
        *store.value_mut(lin.w) = Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        *store.value_mut(lin.b.unwrap()) = Tensor::from_rows(&[&[0.5, -0.5]]);
        let mut sess = Session::new();
        let x = sess.constant(Tensor::from_rows(&[&[1.0, 2.0, 3.0]]));
        let y = lin.forward(&mut sess, &store, x);
        assert_eq!(sess.tape.value(y).row(0), &[4.5, 4.5]);
    }

    #[test]
    fn layer_norm_normalises_rows() {
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 4);
        let mut sess = Session::new();
        let x = sess.constant(Tensor::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]));
        let y = ln.forward(&mut sess, &store, x);
        let row = sess.tape.value(y).row(0).to_vec();
        let mean: f32 = row.iter().sum::<f32>() / 4.0;
        let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn embedding_gathers_rows_and_trains() {
        let mut store = ParamStore::new();
        let emb = Embedding::zeros(&mut store, "emb", 3, 2);
        *store.value_mut(emb.table) = Tensor::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let mut sess = Session::new();
        let y = emb.forward_ids(&mut sess, &store, &[2, 0, 2]);
        assert_eq!(sess.tape.value(y).row(0), &[3.0, 3.0]);
        let loss = sess.tape.sum_all(y);
        let grads = sess.backward(loss);
        let g = &grads[0].1;
        // Row 2 gathered twice → grad 2; row 1 never → grad 0.
        assert_eq!(g.row(2), &[2.0, 2.0]);
        assert_eq!(g.row(1), &[0.0, 0.0]);
        drop(Rc::new(())); // silence unused-import lint paranoia
    }

    #[test]
    fn ffn_shapes_and_eval_determinism() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let ffn = Ffn::new(&mut store, "head", 6, 8, 2, 2, 0.5, &mut rng);
        let x0 = Tensor::rand_uniform(5, 6, -1.0, 1.0, &mut rng);
        let run = |rng: &mut StdRng, train: bool| {
            let mut sess = Session::new();
            let x = sess.constant(x0.clone());
            let y = ffn.forward(&mut sess, &store, x, train, rng);
            sess.tape.value(y).clone()
        };
        let a = run(&mut rng, false);
        let b = run(&mut rng, false);
        assert_eq!(a.shape(), (5, 2));
        assert!(a.max_abs_diff(&b) < 1e-7, "eval mode must be deterministic");
    }
}
