use std::sync::atomic::{AtomicU64, Ordering};

use xfraud_tensor::{Tape, Tensor, Var};

static STORE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Handle to a parameter inside a specific [`ParamStore`].
///
/// The id carries its store's identity so that a [`Session`] can safely bind
/// parameters from *several* stores at once (the GNNExplainer optimises its
/// mask store against a frozen detector store in the same forward pass);
/// using an id against the wrong store panics instead of silently aliasing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId {
    store: u64,
    index: usize,
}

impl ParamId {
    /// Position within the owning store's registration order.
    pub fn index(self) -> usize {
        self.index
    }
}

#[derive(Clone)]
struct Entry {
    name: String,
    value: Tensor,
    /// First Adam moment.
    m: Tensor,
    /// Second Adam moment.
    v: Tensor,
}

/// Owns all trainable tensors of a model plus their optimizer state.
///
/// Parameters persist across steps; each step re-binds them onto a fresh
/// tape through a [`Session`]. This is the "parameters live outside the
/// tape" design the tensor crate documents.
///
/// A clone keeps the original's `uid`, so [`ParamId`]s minted by the
/// original resolve against the clone — cloning a model yields an
/// independent, fully functional replica (the serving path freezes such a
/// replica).
#[derive(Clone)]
pub struct ParamStore {
    uid: u64,
    entries: Vec<Entry>,
}

impl Default for ParamStore {
    fn default() -> Self {
        ParamStore::new()
    }
}

impl ParamStore {
    pub fn new() -> Self {
        ParamStore {
            uid: STORE_COUNTER.fetch_add(1, Ordering::Relaxed),
            entries: Vec::new(),
        }
    }

    /// `true` if `id` was issued by this store.
    pub fn owns(&self, id: ParamId) -> bool {
        id.store == self.uid
    }

    fn check(&self, id: ParamId) -> usize {
        assert!(
            self.owns(id),
            "ParamId used against a store that did not issue it"
        );
        id.index
    }

    /// Registers a parameter tensor under a diagnostic name.
    pub fn register(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let (r, c) = value.shape();
        self.entries.push(Entry {
            name: name.into(),
            value,
            m: Tensor::zeros(r, c),
            v: Tensor::zeros(r, c),
        });
        ParamId {
            store: self.uid,
            index: self.entries.len() - 1,
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn name(&self, id: ParamId) -> &str {
        &self.entries[self.check(id)].name
    }

    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.entries[self.check(id)].value
    }

    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        let i = self.check(id);
        &mut self.entries[i].value
    }

    pub(crate) fn moments_mut(&mut self, id: ParamId) -> (&mut Tensor, &mut Tensor, &mut Tensor) {
        let i = self.check(id);
        let e = &mut self.entries[i];
        (&mut e.value, &mut e.m, &mut e.v)
    }

    /// Total number of scalar weights (for model-size reporting).
    pub fn n_scalars(&self) -> usize {
        self.entries.iter().map(|e| e.value.len()).sum()
    }

    /// Iterates over all parameter ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        let uid = self.uid;
        (0..self.entries.len()).map(move |index| ParamId { store: uid, index })
    }

    /// Copies every parameter value from another store (shapes must match).
    /// Used by the DDP simulator to broadcast initial weights to workers.
    pub fn copy_values_from(&mut self, other: &ParamStore) {
        assert_eq!(self.len(), other.len(), "param stores differ in layout");
        for (dst, src) in self.entries.iter_mut().zip(&other.entries) {
            assert_eq!(dst.value.shape(), src.value.shape(), "param shape mismatch");
            dst.value = src.value.clone();
        }
    }

    /// Maximum absolute difference across all parameters of two stores.
    pub fn max_param_diff(&self, other: &ParamStore) -> f32 {
        assert_eq!(self.len(), other.len());
        self.entries
            .iter()
            .zip(&other.entries)
            .map(|(a, b)| a.value.max_abs_diff(&b.value))
            .fold(0.0, f32::max)
    }
}

/// One forward/backward pass: a fresh tape plus the parameter→leaf bindings
/// made during the forward pass.
pub struct Session {
    pub tape: Tape,
    bound: Vec<(ParamId, Var)>,
}

impl Session {
    pub fn new() -> Self {
        Session {
            tape: Tape::new(),
            bound: Vec::new(),
        }
    }

    /// Binds a parameter onto the tape (idempotent per session: repeated
    /// binds of the same id return the same leaf, so weight sharing across
    /// layers/heads Just Works).
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        if let Some(&(_, var)) = self.bound.iter().find(|(pid, _)| *pid == id) {
            return var;
        }
        let var = self.tape.leaf(store.value(id).clone(), true);
        self.bound.push((id, var));
        var
    }

    /// Inserts a non-trainable tensor (features, type one-hots, ...).
    pub fn constant(&mut self, value: Tensor) -> Var {
        self.tape.leaf(value, false)
    }

    /// Runs backward from `loss` and returns `(param, gradient)` pairs for
    /// every bound parameter that received a gradient.
    pub fn backward(&mut self, loss: Var) -> Vec<(ParamId, Tensor)> {
        self.tape.backward(loss);
        self.bound
            .iter()
            .filter_map(|&(id, var)| self.tape.grad(var).map(|g| (id, g.clone())))
            .collect()
    }
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rebinding_returns_the_same_leaf() {
        let mut store = ParamStore::new();
        let id = store.register("w", Tensor::full(2, 2, 1.0));
        let mut sess = Session::new();
        let a = sess.param(&store, id);
        let b = sess.param(&store, id);
        assert_eq!(a, b);
        assert_eq!(sess.tape.len(), 1);
    }

    #[test]
    fn backward_collects_grads_for_bound_params() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::full(1, 3, 2.0));
        let unused = store.register("unused", Tensor::full(1, 1, 0.0));
        let mut sess = Session::new();
        let wv = sess.param(&store, w);
        let sq = sess.tape.mul(wv, wv);
        let loss = sess.tape.sum_all(sq);
        let grads = sess.backward(loss);
        assert_eq!(grads.len(), 1);
        assert_eq!(grads[0].0, w);
        assert_eq!(grads[0].1.row(0), &[4.0, 4.0, 4.0]);
        assert_eq!(store.name(unused), "unused");
    }

    #[test]
    fn weight_sharing_accumulates_gradients() {
        // y = w + w → dw = 2
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::scalar(3.0));
        let mut sess = Session::new();
        let a = sess.param(&store, w);
        let b = sess.param(&store, w);
        let s = sess.tape.add(a, b);
        let loss = sess.tape.sum_all(s);
        let grads = sess.backward(loss);
        assert_eq!(grads[0].1.item(), 2.0);
    }

    #[test]
    fn copy_values_from_makes_stores_identical() {
        let mut a = ParamStore::new();
        let mut b = ParamStore::new();
        a.register("w", Tensor::full(2, 2, 1.0));
        b.register("w", Tensor::full(2, 2, 9.0));
        b.copy_values_from(&a);
        assert_eq!(a.max_param_diff(&b), 0.0);
    }
}
