//! Layers, parameters and optimizers on top of `xfraud-tensor`.
//!
//! The split mirrors PyTorch's, because the paper's training loop
//! (AdamW + gradient clipping at 0.25, dropout 0.2, layer norm — Appendix C
//! hyper-parameters) is easiest to replicate with the same moving parts:
//!
//! * [`ParamStore`] — owns parameter tensors and their Adam moments across
//!   steps; parameters are addressed by [`ParamId`].
//! * [`Session`] — one forward/backward pass: wraps a fresh `Tape` and
//!   remembers which tape leaf each parameter was bound to, so gradients can
//!   be pulled back out after `backward`.
//! * [`Linear`], [`LayerNorm`], [`Embedding`], [`Ffn`] — the layer zoo the
//!   detector and baselines are assembled from.
//! * [`AdamW`] — decoupled weight decay Adam with global-norm clipping.

mod layers;
mod optim;
mod param;

pub use layers::{Embedding, Ffn, Layer, LayerNorm, Linear};
pub use optim::AdamW;
pub use param::{ParamId, ParamStore, Session};
