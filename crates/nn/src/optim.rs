use xfraud_tensor::Tensor;

use crate::param::{ParamId, ParamStore};

/// AdamW with global-norm gradient clipping — the paper's optimizer
/// (Appendix C: `optimizer = "adamw"`, `clip = 0.25`).
#[derive(Debug, Clone)]
pub struct AdamW {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    pub weight_decay: f32,
    /// Global gradient-norm ceiling; `None` disables clipping.
    pub clip: Option<f32>,
    t: u64,
}

impl AdamW {
    pub fn new(lr: f32) -> Self {
        AdamW {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.01,
            clip: Some(0.25),
            t: 0,
        }
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Chainable weight-decay override (e.g. 0 for mask optimisation).
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Chainable clip override (`None` disables global-norm clipping).
    pub fn with_clip(mut self, clip: Option<f32>) -> Self {
        self.clip = clip;
        self
    }

    /// Applies one update from `(param, grad)` pairs.
    ///
    /// Clipping is by *global* norm across all supplied gradients, matching
    /// `torch.nn.utils.clip_grad_norm_` semantics.
    pub fn step(&mut self, store: &mut ParamStore, grads: &[(ParamId, Tensor)]) {
        self.t += 1;
        let scale = match self.clip {
            Some(max_norm) => {
                let total: f32 = grads.iter().map(|(_, g)| g.norm_sq()).sum();
                let norm = total.sqrt();
                if norm > max_norm {
                    max_norm / (norm + 1e-12)
                } else {
                    1.0
                }
            }
            None => 1.0,
        };
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (id, grad) in grads {
            let (value, m, v) = store.moments_mut(*id);
            debug_assert_eq!(value.shape(), grad.shape(), "grad shape mismatch");
            for i in 0..value.len() {
                let g = grad.data()[i] * scale;
                let mi = self.beta1 * m.data()[i] + (1.0 - self.beta1) * g;
                let vi = self.beta2 * v.data()[i] + (1.0 - self.beta2) * g * g;
                m.data_mut()[i] = mi;
                v.data_mut()[i] = vi;
                let m_hat = mi / bc1;
                let v_hat = vi / bc2;
                let w = value.data()[i];
                value.data_mut()[i] =
                    w - self.lr * (m_hat / (v_hat.sqrt() + self.eps) + self.weight_decay * w);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Session;

    /// Minimising (w-3)^2 must converge to ~3.
    #[test]
    fn adamw_minimises_a_quadratic() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::scalar(0.0));
        let mut opt = AdamW {
            weight_decay: 0.0,
            clip: None,
            ..AdamW::new(0.1)
        };
        for _ in 0..400 {
            let mut sess = Session::new();
            let wv = sess.param(&store, w);
            let c = sess.constant(Tensor::scalar(3.0));
            let d = sess.tape.sub(wv, c);
            let sq = sess.tape.mul(d, d);
            let loss = sess.tape.sum_all(sq);
            let grads = sess.backward(loss);
            opt.step(&mut store, &grads);
        }
        let w_final = store.value(w).item();
        assert!((w_final - 3.0).abs() < 0.05, "w = {w_final}");
    }

    #[test]
    fn clipping_bounds_the_applied_update() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::scalar(0.0));
        let mut opt = AdamW {
            weight_decay: 0.0,
            clip: Some(0.25),
            lr: 1.0,
            ..AdamW::new(1.0)
        };
        // Huge gradient; the first Adam step magnitude is bounded by lr
        // regardless, so compare the *moment* to the clipped gradient.
        let grads = vec![(w, Tensor::scalar(1000.0))];
        opt.step(&mut store, &grads);
        // m = 0.1 * clipped_g; clipped_g = 0.25
        let expected_m = 0.1 * 0.25;
        let mut probe = Session::new();
        let _ = probe.param(&store, w);
        // Second step with zero grad: m decays by beta1.
        let grads2 = vec![(w, Tensor::scalar(0.0))];
        let before = store.value(w).item();
        opt.step(&mut store, &grads2);
        let after = store.value(w).item();
        // The update direction still follows the small clipped moment.
        assert!((after - before).abs() < 1.0);
        assert!(expected_m > 0.0);
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::scalar(10.0));
        let mut opt = AdamW {
            weight_decay: 0.1,
            clip: None,
            ..AdamW::new(0.01)
        };
        let grads = vec![(w, Tensor::scalar(0.0))];
        opt.step(&mut store, &grads);
        let v = store.value(w).item();
        assert!((v - (10.0 - 0.01 * 0.1 * 10.0)).abs() < 1e-5, "v={v}");
    }
}
