//! Kernel golden tests: every kernel is checked against an independent
//! straight-line reference implementation, both on hand-built fixtures and
//! on a generated transaction graph, and across thread counts.

// Generating the txn graph alone would take hours under the interpreter;
// the Miri job exercises the kernels' unsafe internals via the per-kernel
// unit tests on small fixtures instead.
#![cfg(not(miri))]

use std::collections::VecDeque;

use xfraud_datagen::{Dataset, DatasetPreset};
use xfraud_hetgraph::GraphView;
use xfraud_kernels::{
    betweenness, bfs, connected_components, core_numbers, pagerank, FlatCsr, KernelConfig,
};

fn txn_graph() -> FlatCsr {
    let g = Dataset::generate(DatasetPreset::EbaySmallSim, 11).graph;
    FlatCsr::from_view(&g).unwrap()
}

fn adjacency(g: &FlatCsr) -> Vec<Vec<usize>> {
    (0..g.n_nodes())
        .map(|v| g.neighbors(v).iter().map(|&w| w as usize).collect())
        .collect()
}

/// Textbook queue BFS.
fn reference_bfs(adj: &[Vec<usize>], source: usize) -> Vec<i64> {
    let mut depths = vec![-1i64; adj.len()];
    depths[source] = 0;
    let mut q = VecDeque::from([source]);
    while let Some(u) = q.pop_front() {
        for &w in &adj[u] {
            if depths[w] < 0 {
                depths[w] = depths[u] + 1;
                q.push_back(w);
            }
        }
    }
    depths
}

/// Dense power iteration with the same dangling-mass redistribution.
fn reference_pagerank(adj: &[Vec<usize>], damping: f64, iters: usize) -> Vec<f64> {
    let n = adj.len();
    let mut rank = vec![1.0 / n as f64; n];
    for _ in 0..iters {
        let mut next = vec![0.0f64; n];
        let mut dangling = 0.0;
        for (v, nbrs) in adj.iter().enumerate() {
            if nbrs.is_empty() {
                dangling += rank[v];
            } else {
                let share = rank[v] / nbrs.len() as f64;
                for &w in nbrs {
                    next[w] += share;
                }
            }
        }
        for x in next.iter_mut() {
            *x = (1.0 - damping) / n as f64 + damping * (*x + dangling / n as f64);
        }
        rank = next;
    }
    rank
}

/// Union-find component labels normalized to min member id.
fn reference_components(adj: &[Vec<usize>]) -> Vec<u32> {
    let n = adj.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut v: usize) -> usize {
        while parent[v] != v {
            parent[v] = parent[parent[v]];
            v = parent[v];
        }
        v
    }
    for (v, nbrs) in adj.iter().enumerate() {
        for &w in nbrs {
            let (a, b) = (find(&mut parent, v), find(&mut parent, w));
            if a != b {
                parent[a.max(b)] = a.min(b);
            }
        }
    }
    let mut min_label = vec![u32::MAX; n];
    for v in 0..n {
        let r = find(&mut parent, v);
        min_label[r] = min_label[r].min(v as u32);
    }
    (0..n).map(|v| min_label[find(&mut parent, v)]).collect()
}

#[test]
fn bfs_matches_queue_reference_on_txn_graph() {
    let g = txn_graph();
    let adj = adjacency(&g);
    let cfg = KernelConfig::builder().threads(4).build().unwrap();
    for source in [0usize, 1, g.n_nodes() / 2, g.n_nodes() - 1] {
        assert_eq!(
            bfs(&g, source, &cfg).unwrap(),
            reference_bfs(&adj, source),
            "bfs from {source} diverged from the reference"
        );
    }
}

#[test]
fn bfs_direction_switches_do_not_change_depths() {
    let g = txn_graph();
    let baseline = bfs(&g, 0, &KernelConfig::default()).unwrap();
    for (alpha, beta, threads) in [(1, 1000, 1), (1, 2, 4), (usize::MAX, 18, 2)] {
        let cfg = KernelConfig::builder()
            .alpha(alpha)
            .beta(beta)
            .threads(threads)
            .build()
            .unwrap();
        assert_eq!(bfs(&g, 0, &cfg).unwrap(), baseline);
    }
}

#[test]
fn pagerank_matches_power_iteration() {
    let g = txn_graph();
    let adj = adjacency(&g);
    let iters = 60;
    let cfg = KernelConfig::builder()
        .threads(4)
        .max_iters(iters)
        .tolerance(0.0) // run all sweeps, like the reference
        .build()
        .unwrap();
    let fast = pagerank(&g, &cfg);
    let slow = reference_pagerank(&adj, cfg.damping(), iters);
    assert_eq!(fast.len(), slow.len());
    for (i, (a, b)) in fast.iter().zip(&slow).enumerate() {
        assert!(
            (a - b).abs() < 1e-10,
            "rank[{i}] diverged: kernel {a} vs reference {b}"
        );
    }
    let mass: f64 = fast.iter().sum();
    assert!(
        (mass - 1.0).abs() < 1e-9,
        "rank mass should be ~1, got {mass}"
    );
}

#[test]
fn connected_components_match_union_find() {
    let g = txn_graph();
    let adj = adjacency(&g);
    let cfg = KernelConfig::builder().threads(4).build().unwrap();
    assert_eq!(connected_components(&g, &cfg), reference_components(&adj));
}

#[test]
fn kernels_are_bit_identical_across_thread_counts_on_txn_graph() {
    let g = txn_graph();
    let serial = KernelConfig::default();
    for threads in [2usize, 8] {
        let t = KernelConfig::builder().threads(threads).build().unwrap();
        assert_eq!(bfs(&g, 0, &serial).unwrap(), bfs(&g, 0, &t).unwrap());
        assert_eq!(pagerank(&g, &serial), pagerank(&g, &t));
        assert_eq!(
            connected_components(&g, &serial),
            connected_components(&g, &t)
        );
    }
}

#[test]
fn core_numbers_respect_degeneracy_invariants_on_txn_graph() {
    let g = txn_graph();
    let cores = core_numbers(&g);
    // A node's core number never exceeds its degree, and the k-core
    // subgraph really has min degree >= k for the max k observed.
    for (v, &c) in cores.iter().enumerate() {
        assert!(c as usize <= g.degree(v));
    }
    let kmax = cores.iter().copied().max().unwrap_or(0);
    let members: Vec<usize> = (0..g.n_nodes()).filter(|&v| cores[v] >= kmax).collect();
    assert!(!members.is_empty());
    for &v in &members {
        let inside = g
            .neighbors(v)
            .iter()
            .filter(|&&w| cores[w as usize] >= kmax)
            .count();
        assert!(
            inside >= kmax as usize,
            "node {v} has only {inside} neighbors inside the {kmax}-core"
        );
    }
}

#[test]
fn betweenness_matches_hand_values_on_barbell() {
    // Two triangles {0,1,2} and {3,4,5} joined by the bridge 2-3. All nine
    // ordered cross pairs traverse the bridge endpoints.
    let mut adj = vec![Vec::new(); 6];
    for &(a, b) in &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)] {
        adj[a].push(b);
        adj[b].push(a);
    }
    let g = FlatCsr::from_adj(&adj).unwrap();
    let bc = betweenness(&g, &KernelConfig::default());
    let expected = brute_force_betweenness(&adj);
    for (i, (a, b)) in bc.iter().zip(&expected).enumerate() {
        assert!(
            (a - b).abs() < 1e-9,
            "bc[{i}] diverged: kernel {a} vs brute force {b}"
        );
    }
    assert!(bc[2] > bc[0] && bc[3] > bc[4], "bridge endpoints dominate");
}

/// O(V^3)-ish brute force: count shortest paths through each node by BFS
/// path enumeration (sigma forward, sigma backward).
fn brute_force_betweenness(adj: &[Vec<usize>]) -> Vec<f64> {
    let n = adj.len();
    let mut bc = vec![0.0f64; n];
    for s in 0..n {
        for t in 0..n {
            if s == t {
                continue;
            }
            let ds = reference_bfs(adj, s);
            let dt = reference_bfs(adj, t);
            if ds[t] < 0 {
                continue;
            }
            let sigma_st = count_paths(adj, &ds, s, t);
            for v in 0..n {
                if v == s || v == t {
                    continue;
                }
                if ds[v] >= 0 && dt[v] >= 0 && ds[v] + dt[v] == ds[t] {
                    let through = count_paths(adj, &ds, s, v) * count_paths(adj, &dt, t, v);
                    bc[v] += through / sigma_st;
                }
            }
        }
    }
    bc
}

/// Number of shortest paths from `s` (with depths `d`) to `t`, by DP over
/// increasing depth.
fn count_paths(adj: &[Vec<usize>], d: &[i64], s: usize, t: usize) -> f64 {
    let mut order: Vec<usize> = (0..adj.len()).filter(|&v| d[v] >= 0).collect();
    order.sort_by_key(|&v| d[v]);
    let mut sigma = vec![0.0f64; adj.len()];
    sigma[s] = 1.0;
    for &v in &order {
        for &w in &adj[v] {
            if d[w] == d[v] + 1 {
                sigma[w] += sigma[v];
            }
        }
    }
    sigma[t]
}

#[test]
fn flatcsr_from_live_snapshot_equals_from_base_graph() {
    use xfraud_hetgraph::DeltaGraph;
    let g = Dataset::generate(DatasetPreset::EbaySmallSim, 11).graph;
    let flat_direct = FlatCsr::from_view(&g).unwrap();
    let delta = DeltaGraph::new(std::sync::Arc::new(g));
    let snap = GraphView::snapshot(&delta);
    let flat_snap = FlatCsr::from_view(&snap).unwrap();
    assert_eq!(flat_direct, flat_snap);
}
