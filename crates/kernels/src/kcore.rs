//! k-core decomposition via Batagelj–Zaveršnik bin-sort peeling.
//!
//! Serial O(V + E): nodes are bucketed by degree and repeatedly peeled in
//! ascending current-degree order; a node's core number is its degree at the
//! moment it is peeled. The peel order within a bucket is ascending node id
//! (bin sort is stable over ids), so the output is fully deterministic.

use crate::flat::FlatCsr;

/// Core numbers: `cores[v]` is the largest `k` such that `v` belongs to a
/// subgraph where every node has degree ≥ `k`.
pub fn core_numbers(g: &FlatCsr) -> Vec<u32> {
    let n = g.n_nodes();
    if n == 0 {
        return Vec::new();
    }
    let mut deg: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    let max_deg = deg.iter().copied().max().unwrap_or(0);

    // bin[d] = start offset of the degree-d block inside `vert`.
    let mut bin = vec![0usize; max_deg + 2];
    for &d in &deg {
        bin[d + 1] += 1;
    }
    for d in 1..bin.len() {
        bin[d] += bin[d - 1];
    }
    let mut vert = vec![0usize; n];
    let mut pos = vec![0usize; n];
    {
        let mut cursor = bin.clone();
        for v in 0..n {
            pos[v] = cursor[deg[v]];
            vert[pos[v]] = v;
            cursor[deg[v]] += 1;
        }
    }

    for i in 0..n {
        let v = vert[i];
        let dv = deg[v];
        for &u in g.neighbors(v) {
            let u = u as usize;
            if deg[u] > dv {
                // Move u one bucket down: swap it with the first node of its
                // current bucket, then advance that bucket's start.
                let du = deg[u];
                let pu = pos[u];
                let pw = bin[du];
                let w = vert[pw];
                if u != w {
                    vert[pu] = w;
                    vert[pw] = u;
                    pos[u] = pw;
                    pos[w] = pu;
                }
                bin[du] += 1;
                deg[u] -= 1;
            }
        }
    }
    deg.into_iter().map(|d| d as u32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(n: usize, edges: &[(usize, usize)]) -> FlatCsr {
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        FlatCsr::from_adj(&adj).unwrap()
    }

    #[test]
    fn triangle_with_a_tail_peels_correctly() {
        // 0-1-2 triangle, tail 2-3-4.
        let g = sym(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]);
        assert_eq!(core_numbers(&g), vec![2, 2, 2, 1, 1]);
    }

    #[test]
    fn clique_core_is_size_minus_one() {
        let mut edges = Vec::new();
        for a in 0..5 {
            for b in (a + 1)..5 {
                edges.push((a, b));
            }
        }
        let g = sym(6, &edges); // node 5 isolated
        assert_eq!(core_numbers(&g), vec![4, 4, 4, 4, 4, 0]);
    }
}
