//! Direction-optimizing BFS (Beamer's hybrid, as in the GAP benchmark).
//!
//! Top-down steps scan the frontier's out-edges; bottom-up steps scan the
//! *unvisited* nodes asking "is any of my neighbors on the frontier?". On
//! low-diameter graphs the frontier briefly covers most of the graph and
//! bottom-up skips the vast majority of edge checks. The switch heuristics
//! are GAP's: go bottom-up when the frontier's outgoing edges exceed
//! `unexplored / alpha`, return top-down when the frontier shrinks below
//! `n / beta`.
//!
//! Determinism: a node's depth is `parent_depth + 1` no matter which frontier
//! node discovers it, so depths are independent of visit order; top-down runs
//! serially over the [`SlidingQueue`] window, and bottom-up parallelizes over
//! fixed node chunks whose outputs are concatenated in chunk order. The
//! result is bit-identical for every thread count and every alpha/beta.

use crate::config::KernelConfig;
use crate::error::KernelError;
use crate::flat::FlatCsr;
use crate::par::{map_chunks, NODE_CHUNK};
use crate::queue::SlidingQueue;

/// Depth of the node not yet reached.
const UNSEEN: i64 = -1;

/// BFS depths from `source`: `depths[v]` is the hop distance, `-1` if
/// unreachable.
pub fn bfs(g: &FlatCsr, source: usize, cfg: &KernelConfig) -> Result<Vec<i64>, KernelError> {
    let n = g.n_nodes();
    if source >= n {
        return Err(KernelError::SourceOutOfRange { source, n_nodes: n });
    }

    let mut depths = vec![UNSEEN; n];
    depths[source] = 0;
    let mut queue = SlidingQueue::with_capacity(n);
    queue.push(source as u32);
    queue.slide_window();

    // Frontier state for the bottom-up phase (kept outside the loop so the
    // allocation is reused across direction switches).
    let mut bottom_up_frontier: Vec<u32> = Vec::new();
    let mut top_down = true;
    let mut depth: i64 = 0;
    // Out-edges not yet scanned from a frontier; drives the alpha switch.
    let mut edges_unexplored = g.n_edges();

    loop {
        let frontier_len = if top_down {
            queue.window_len()
        } else {
            bottom_up_frontier.len()
        };
        if frontier_len == 0 {
            break;
        }

        if top_down {
            // Serial top-down step over the sliding-queue window.
            let mut scout = 0usize;
            let (win_start, win_end) = (
                queue.total_pushed() - queue.window_len(),
                queue.total_pushed(),
            );
            let mut i = win_start;
            while i < win_end {
                let u = queue.history()[i] as usize;
                edges_unexplored = edges_unexplored.saturating_sub(g.degree(u));
                for &w in g.neighbors(u) {
                    let w = w as usize;
                    if depths[w] == UNSEEN {
                        depths[w] = depth + 1;
                        queue.push(w as u32);
                        scout += g.degree(w);
                    }
                }
                i += 1;
            }
            queue.slide_window();
            depth += 1;
            // GAP alpha heuristic: the next frontier's outgoing edges vs the
            // edges still unexplored.
            if scout > edges_unexplored / cfg.alpha() && queue.window_len() > 0 {
                top_down = false;
                bottom_up_frontier.clear();
                bottom_up_frontier.extend_from_slice(queue.window());
                bottom_up_frontier.sort_unstable();
            }
        } else {
            // Parallel bottom-up step: every unvisited node checks whether a
            // neighbor sits at the current depth. Chunks write disjoint
            // outputs; concatenation in chunk order keeps the next frontier
            // sorted and thread-count independent.
            let d = depth;
            let found = map_chunks(n, NODE_CHUNK, cfg.threads(), |r| {
                let mut local: Vec<u32> = Vec::new();
                for v in r {
                    if depths[v] != UNSEEN {
                        continue;
                    }
                    for &u in g.neighbors(v) {
                        if depths[u as usize] == d {
                            local.push(v as u32);
                            break;
                        }
                    }
                }
                local
            });
            bottom_up_frontier.clear();
            for chunk in found {
                bottom_up_frontier.extend_from_slice(&chunk);
            }
            for &v in &bottom_up_frontier {
                depths[v as usize] = depth + 1;
                edges_unexplored = edges_unexplored.saturating_sub(g.degree(v as usize));
            }
            depth += 1;
            // GAP beta heuristic: back to top-down once the frontier is small.
            if bottom_up_frontier.len() < n / cfg.beta().max(1) {
                top_down = true;
                queue.extend_from_slice(&bottom_up_frontier);
                queue.slide_window();
            }
        }
    }

    Ok(depths)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> FlatCsr {
        let adj: Vec<Vec<usize>> = (0..n)
            .map(|v| {
                let mut a = Vec::new();
                if v > 0 {
                    a.push(v - 1);
                }
                if v + 1 < n {
                    a.push(v + 1);
                }
                a
            })
            .collect();
        FlatCsr::from_adj(&adj).unwrap()
    }

    #[test]
    fn path_graph_depths_are_distances() {
        let g = path(6);
        let cfg = KernelConfig::default();
        let d = bfs(&g, 2, &cfg).unwrap();
        assert_eq!(d, vec![2, 1, 0, 1, 2, 3]);
    }

    #[test]
    fn unreachable_nodes_stay_minus_one() {
        let g = FlatCsr::from_adj(&[vec![1], vec![0], vec![]]).unwrap();
        let d = bfs(&g, 0, &KernelConfig::default()).unwrap();
        assert_eq!(d, vec![0, 1, -1]);
    }

    #[test]
    fn source_out_of_range_is_an_error() {
        let g = path(3);
        assert_eq!(
            bfs(&g, 9, &KernelConfig::default()),
            Err(KernelError::SourceOutOfRange {
                source: 9,
                n_nodes: 3
            })
        );
    }

    #[test]
    fn forced_bottom_up_matches_forced_top_down() {
        // alpha=1 flips to bottom-up at the first opportunity; a huge alpha
        // stays top-down throughout. Depths must agree bit for bit.
        let g = path(64);
        let eager = KernelConfig::builder().alpha(1).beta(1000).build().unwrap();
        let never = KernelConfig::builder().alpha(usize::MAX).build().unwrap();
        assert_eq!(bfs(&g, 0, &eager).unwrap(), bfs(&g, 0, &never).unwrap());
    }
}
