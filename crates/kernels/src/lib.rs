//! Parallel GAP-style graph kernels over a flat CSR.
//!
//! The GAP benchmark suite's algorithm set — direction-optimizing BFS,
//! pull-based PageRank, label-propagation connected components, k-core
//! peeling and Brandes betweenness — implemented against [`FlatCsr`], a
//! 32-bit target arena built either from any `hetgraph::GraphView` (live
//! snapshots included) or from the explainer's adjacency-list communities.
//!
//! Two properties hold for every kernel:
//!
//! * **Determinism.** Results are bit-identical for every thread count.
//!   Parallel sweeps run over *fixed* chunk geometry (independent of the
//!   worker count) with disjoint writes, and floating-point reductions fold
//!   chunk partials in chunk order. No clocks, no entropy, no hash-map
//!   iteration anywhere in the crate.
//! * **No panics on bad input.** Out-of-range sources, oversized graphs and
//!   invalid configurations come back as [`KernelError`] / [`ConfigError`]
//!   values.
//!
//! Configuration goes through [`KernelConfig::builder`] — a validating
//! builder whose `build()` is the only path to a non-default config.

mod bc;
mod bfs;
mod cc;
mod config;
mod error;
mod flat;
mod kcore;
mod par;
mod pr;
mod queue;

pub use bc::betweenness;
pub use bfs::bfs;
pub use cc::connected_components;
pub use config::{ConfigError, KernelConfig, KernelConfigBuilder};
pub use error::KernelError;
pub use flat::FlatCsr;
pub use kcore::core_numbers;
pub use pr::pagerank;
pub use queue::SlidingQueue;
