//! Typed kernel failures. Kernels never panic on bad input — out-of-range
//! sources and oversized graphs come back as values.

use std::fmt;

use crate::config::ConfigError;

#[derive(Debug, Clone, PartialEq)]
pub enum KernelError {
    /// An invalid configuration reached a kernel entry point.
    Config(ConfigError),
    /// A BFS/traversal source id is not a node of the graph.
    SourceOutOfRange { source: usize, n_nodes: usize },
    /// The graph has more nodes than the 32-bit target arena can address.
    TooLarge { n_nodes: usize },
    /// An adjacency list references a node id outside the graph.
    NodeOutOfRange { node: usize, n_nodes: usize },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::Config(e) => write!(f, "invalid kernel config: {e}"),
            KernelError::SourceOutOfRange { source, n_nodes } => {
                write!(f, "source {source} out of range for {n_nodes} nodes")
            }
            KernelError::TooLarge { n_nodes } => {
                write!(f, "graph with {n_nodes} nodes exceeds the u32 arena limit")
            }
            KernelError::NodeOutOfRange { node, n_nodes } => {
                write!(
                    f,
                    "adjacency target {node} out of range for {n_nodes} nodes"
                )
            }
        }
    }
}

impl std::error::Error for KernelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KernelError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for KernelError {
    fn from(e: ConfigError) -> Self {
        KernelError::Config(e)
    }
}
