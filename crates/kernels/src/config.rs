//! Tuning knobs for the kernels, with a validating builder.
//!
//! Every kernel takes a [`KernelConfig`] by reference. Fields are private so
//! an invalid combination can never reach a kernel: the only way to deviate
//! from [`KernelConfig::default`] is through [`KernelConfig::builder`], whose
//! `build` rejects bad values with a typed [`ConfigError`].

use std::fmt;

/// Validated kernel configuration. Construct via [`KernelConfig::default`]
/// or [`KernelConfig::builder`].
#[derive(Debug, Clone, PartialEq)]
pub struct KernelConfig {
    threads: usize,
    alpha: usize,
    beta: usize,
    damping: f64,
    max_iters: usize,
    tolerance: f64,
}

impl Default for KernelConfig {
    /// Serial execution with the GAP reference heuristics: `alpha = 15`,
    /// `beta = 18`, damping `0.85`, up to 100 iterations, L1 tolerance
    /// `1e-12`.
    fn default() -> Self {
        KernelConfig {
            threads: 1,
            alpha: 15,
            beta: 18,
            damping: 0.85,
            max_iters: 100,
            tolerance: 1e-12,
        }
    }
}

impl KernelConfig {
    pub fn builder() -> KernelConfigBuilder {
        KernelConfigBuilder {
            cfg: KernelConfig::default(),
        }
    }

    /// Worker threads used by the parallel phases (≥ 1; 1 = fully serial).
    /// Results are bit-identical for every thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Direction-optimizing BFS: switch top-down → bottom-up when the
    /// frontier's outgoing edge count exceeds `unexplored_edges / alpha`.
    pub fn alpha(&self) -> usize {
        self.alpha
    }

    /// Direction-optimizing BFS: switch bottom-up → top-down when the
    /// frontier shrinks below `n_nodes / beta`.
    pub fn beta(&self) -> usize {
        self.beta
    }

    /// PageRank damping factor, strictly inside `(0, 1)`.
    pub fn damping(&self) -> f64 {
        self.damping
    }

    /// Iteration cap for the fixpoint kernels (PageRank).
    pub fn max_iters(&self) -> usize {
        self.max_iters
    }

    /// L1 convergence threshold for PageRank (finite, ≥ 0).
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }
}

/// Why a [`KernelConfigBuilder::build`] call was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `threads` must be at least 1.
    ZeroThreads,
    /// `alpha` must be at least 1 (it divides the unexplored edge count).
    ZeroAlpha,
    /// `beta` must be at least 1 (it divides the node count).
    ZeroBeta,
    /// Damping must satisfy `0 < damping < 1`.
    DampingOutOfRange(f64),
    /// `max_iters` must be at least 1.
    ZeroIterations,
    /// Tolerance must be finite and non-negative.
    BadTolerance(f64),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroThreads => write!(f, "threads must be >= 1"),
            ConfigError::ZeroAlpha => write!(f, "alpha must be >= 1"),
            ConfigError::ZeroBeta => write!(f, "beta must be >= 1"),
            ConfigError::DampingOutOfRange(d) => {
                write!(f, "damping must lie strictly in (0, 1), got {d}")
            }
            ConfigError::ZeroIterations => write!(f, "max_iters must be >= 1"),
            ConfigError::BadTolerance(t) => {
                write!(f, "tolerance must be finite and >= 0, got {t}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Builder for [`KernelConfig`]; every setter is optional, `build` validates.
#[derive(Debug, Clone)]
pub struct KernelConfigBuilder {
    cfg: KernelConfig,
}

impl KernelConfigBuilder {
    pub fn threads(mut self, threads: usize) -> Self {
        self.cfg.threads = threads;
        self
    }

    pub fn alpha(mut self, alpha: usize) -> Self {
        self.cfg.alpha = alpha;
        self
    }

    pub fn beta(mut self, beta: usize) -> Self {
        self.cfg.beta = beta;
        self
    }

    pub fn damping(mut self, damping: f64) -> Self {
        self.cfg.damping = damping;
        self
    }

    pub fn max_iters(mut self, max_iters: usize) -> Self {
        self.cfg.max_iters = max_iters;
        self
    }

    pub fn tolerance(mut self, tolerance: f64) -> Self {
        self.cfg.tolerance = tolerance;
        self
    }

    pub fn build(self) -> Result<KernelConfig, ConfigError> {
        let c = &self.cfg;
        if c.threads == 0 {
            return Err(ConfigError::ZeroThreads);
        }
        if c.alpha == 0 {
            return Err(ConfigError::ZeroAlpha);
        }
        if c.beta == 0 {
            return Err(ConfigError::ZeroBeta);
        }
        if !(c.damping > 0.0 && c.damping < 1.0) {
            return Err(ConfigError::DampingOutOfRange(c.damping));
        }
        if c.max_iters == 0 {
            return Err(ConfigError::ZeroIterations);
        }
        if !(c.tolerance.is_finite() && c.tolerance >= 0.0) {
            return Err(ConfigError::BadTolerance(c.tolerance));
        }
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_buildable_and_matches_builder_noop() {
        let built = KernelConfig::builder().build().unwrap();
        assert_eq!(built, KernelConfig::default());
        assert_eq!(built.threads(), 1);
        assert_eq!(built.alpha(), 15);
        assert_eq!(built.beta(), 18);
    }

    #[test]
    fn builder_rejects_each_invalid_field() {
        assert_eq!(
            KernelConfig::builder().threads(0).build(),
            Err(ConfigError::ZeroThreads)
        );
        assert_eq!(
            KernelConfig::builder().alpha(0).build(),
            Err(ConfigError::ZeroAlpha)
        );
        assert_eq!(
            KernelConfig::builder().beta(0).build(),
            Err(ConfigError::ZeroBeta)
        );
        assert_eq!(
            KernelConfig::builder().damping(1.0).build(),
            Err(ConfigError::DampingOutOfRange(1.0))
        );
        assert_eq!(
            KernelConfig::builder().damping(0.0).build(),
            Err(ConfigError::DampingOutOfRange(0.0))
        );
        assert_eq!(
            KernelConfig::builder().max_iters(0).build(),
            Err(ConfigError::ZeroIterations)
        );
        assert!(matches!(
            KernelConfig::builder().tolerance(f64::NAN).build(),
            Err(ConfigError::BadTolerance(t)) if t.is_nan()
        ));
        assert_eq!(
            KernelConfig::builder().tolerance(-1.0).build(),
            Err(ConfigError::BadTolerance(-1.0))
        );
    }

    #[test]
    fn builder_accepts_a_full_custom_config() {
        let c = KernelConfig::builder()
            .threads(8)
            .alpha(4)
            .beta(24)
            .damping(0.9)
            .max_iters(50)
            .tolerance(1e-9)
            .build()
            .unwrap();
        assert_eq!(c.threads(), 8);
        assert_eq!(c.damping(), 0.9);
        assert_eq!(c.max_iters(), 50);
    }
}
