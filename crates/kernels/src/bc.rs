//! Betweenness centrality (Brandes), parallel over fixed source chunks.
//!
//! One Brandes pass per source: a BFS records visit order, shortest-path
//! counts `sigma` and distances; the reverse sweep accumulates dependencies
//! without predecessor lists (a neighbor `u` of `w` is a predecessor iff
//! `dist[u] == dist[w] - 1`). Sources are processed in fixed chunks of
//! [`SOURCE_CHUNK`]; each chunk accumulates into its own partial vector in
//! source order, and partials are folded in chunk order — the usual trick in
//! this crate for a thread-count-invariant floating-point result.
//!
//! Scores count ordered pairs: on a symmetric graph every unordered pair
//! `{s, t}` contributes twice (once per direction), matching the convention
//! of running Brandes over all sources of a directed graph.

use crate::config::KernelConfig;
use crate::flat::FlatCsr;
use crate::par::map_chunks;
use crate::queue::SlidingQueue;

/// Sources per parallel work unit; fixed so the reduction order (and hence
/// the bits of the result) never depends on the thread count.
const SOURCE_CHUNK: usize = 16;

/// Betweenness of every node over all-pairs shortest paths (unweighted,
/// ordered pairs, endpoints excluded).
pub fn betweenness(g: &FlatCsr, cfg: &KernelConfig) -> Vec<f64> {
    let n = g.n_nodes();
    if n == 0 {
        return Vec::new();
    }

    let partials = map_chunks(n, SOURCE_CHUNK, cfg.threads(), |sources| {
        let mut acc = vec![0.0f64; n];
        let mut dist = vec![-1i64; n];
        let mut sigma = vec![0.0f64; n];
        let mut delta = vec![0.0f64; n];
        let mut order = SlidingQueue::with_capacity(n);
        for s in sources {
            brandes_pass(
                g, s, &mut acc, &mut dist, &mut sigma, &mut delta, &mut order,
            );
        }
        acc
    });

    let mut bc = vec![0.0f64; n];
    for acc in partials {
        for (b, a) in bc.iter_mut().zip(acc) {
            *b += a;
        }
    }
    bc
}

/// One source's dependency accumulation into `acc`. Scratch buffers are
/// caller-owned so a chunk reuses its allocations across sources.
fn brandes_pass(
    g: &FlatCsr,
    s: usize,
    acc: &mut [f64],
    dist: &mut [i64],
    sigma: &mut [f64],
    delta: &mut [f64],
    order: &mut SlidingQueue,
) {
    for d in dist.iter_mut() {
        *d = -1;
    }
    for x in sigma.iter_mut() {
        *x = 0.0;
    }
    for x in delta.iter_mut() {
        *x = 0.0;
    }
    order.reset();

    dist[s] = 0;
    sigma[s] = 1.0;
    order.push(s as u32);
    order.slide_window();
    while !order.window_is_empty() {
        let (start, end) = (
            order.total_pushed() - order.window_len(),
            order.total_pushed(),
        );
        let mut i = start;
        while i < end {
            let u = order.history()[i] as usize;
            let du = dist[u];
            for &w in g.neighbors(u) {
                let w = w as usize;
                if dist[w] < 0 {
                    dist[w] = du + 1;
                    order.push(w as u32);
                }
                if dist[w] == du + 1 {
                    sigma[w] += sigma[u];
                }
            }
            i += 1;
        }
        order.slide_window();
    }

    // Reverse sweep over the visit order (history is sorted by distance).
    for &wu in order.history().iter().rev() {
        let w = wu as usize;
        let coeff = (1.0 + delta[w]) / sigma[w];
        for &u in g.neighbors(w) {
            let u = u as usize;
            if dist[u] == dist[w] - 1 {
                delta[u] += sigma[u] * coeff;
            }
        }
        if w != s {
            acc[w] += delta[w];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(n: usize, edges: &[(usize, usize)]) -> FlatCsr {
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        FlatCsr::from_adj(&adj).unwrap()
    }

    #[test]
    fn path_middle_node_carries_all_pairs() {
        // Path 0-1-2: the only shortest path between 0 and 2 runs through 1,
        // counted in both directions.
        let g = sym(3, &[(0, 1), (1, 2)]);
        let bc = betweenness(&g, &KernelConfig::default());
        assert_eq!(bc, vec![0.0, 2.0, 0.0]);
    }

    #[test]
    fn star_center_carries_every_leaf_pair() {
        // Star with 4 leaves: 4*3 ordered leaf pairs all route via the hub.
        let g = sym(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let bc = betweenness(&g, &KernelConfig::default());
        assert_eq!(bc[0], 12.0);
        assert!(bc[1..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn square_splits_dependency_between_two_paths() {
        // Cycle 0-1-2-3: opposite corners are linked by two equal paths, so
        // each intermediate node gets 1/2 per direction = 1.0 total.
        let g = sym(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let bc = betweenness(&g, &KernelConfig::default());
        assert_eq!(bc, vec![1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn thread_count_is_invisible_in_the_bits() {
        let n = 200usize;
        let mut edges = Vec::new();
        for v in 1..n {
            edges.push((v, v * 7 % v.max(1)));
            if v + 1 < n {
                edges.push((v, v + 1));
            }
        }
        let g = sym(n, &edges);
        let serial = betweenness(&g, &KernelConfig::default());
        let threaded = betweenness(&g, &KernelConfig::builder().threads(5).build().unwrap());
        assert_eq!(serial, threaded);
    }
}
