//! Pull-based PageRank with chunk-deterministic parallel reduction.
//!
//! Each sweep pulls `rank[u] / deg(u)` from every in-neighbor (the graph is
//! stored symmetrically, so out-adjacency doubles as in-adjacency). Pulling
//! means every node's new rank is written by exactly one chunk — no atomics —
//! and the per-node neighbor sum runs in CSR order, so the floating-point
//! result is the same on any thread count. The residual (L1 delta) and the
//! dangling mass are reduced chunk-partial first, then summed in chunk
//! order, which keeps convergence decisions bit-identical too.

use crate::config::KernelConfig;
use crate::flat::FlatCsr;
use crate::par::{map_chunks, NODE_CHUNK};

/// PageRank scores (summing to ~1). Runs until the L1 residual drops to
/// `cfg.tolerance()` or `cfg.max_iters()` sweeps, whichever first.
pub fn pagerank(g: &FlatCsr, cfg: &KernelConfig) -> Vec<f64> {
    let n = g.n_nodes();
    if n == 0 {
        return Vec::new();
    }
    let d = cfg.damping();
    let inv_n = 1.0 / n as f64;

    let mut rank = vec![inv_n; n];
    let mut contrib = vec![0.0f64; n];

    for _ in 0..cfg.max_iters() {
        // Serial O(n) prologue: per-node contribution and dangling mass in
        // node order (deterministic regardless of threads).
        let mut dangling = 0.0f64;
        for v in 0..n {
            let deg = g.degree(v);
            if deg == 0 {
                dangling += rank[v];
                contrib[v] = 0.0;
            } else {
                contrib[v] = rank[v] / deg as f64;
            }
        }
        let base = (1.0 - d) * inv_n + d * dangling * inv_n;

        // Parallel O(E) pull: chunk outputs carry the new ranks for their
        // range plus the chunk's L1 residual.
        let chunks = map_chunks(n, NODE_CHUNK, cfg.threads(), |r| {
            let mut new_ranks = Vec::with_capacity(r.len());
            let mut delta = 0.0f64;
            for v in r {
                let mut sum = 0.0f64;
                for &u in g.neighbors(v) {
                    sum += contrib[u as usize];
                }
                let nr = base + d * sum;
                delta += (nr - rank[v]).abs();
                new_ranks.push(nr);
            }
            (new_ranks, delta)
        });

        let mut delta = 0.0f64;
        let mut at = 0usize;
        for (new_ranks, chunk_delta) in chunks {
            rank[at..at + new_ranks.len()].copy_from_slice(&new_ranks);
            at += new_ranks.len();
            delta += chunk_delta;
        }
        if delta <= cfg.tolerance() {
            break;
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_cycle_has_uniform_rank() {
        let adj = vec![vec![1, 3], vec![0, 2], vec![1, 3], vec![2, 0]];
        let g = FlatCsr::from_adj(&adj).unwrap();
        let r = pagerank(&g, &KernelConfig::default());
        for &x in &r {
            assert!(
                (x - 0.25).abs() < 1e-12,
                "cycle rank should be uniform: {r:?}"
            );
        }
    }

    #[test]
    fn star_center_outranks_leaves_and_mass_is_conserved() {
        let adj = vec![vec![1, 2, 3], vec![0], vec![0], vec![0]];
        let g = FlatCsr::from_adj(&adj).unwrap();
        let r = pagerank(&g, &KernelConfig::default());
        assert!(r[0] > r[1] && r[1] == r[2] && r[2] == r[3]);
        let total: f64 = r.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "mass conserved, got {total}");
    }

    #[test]
    fn thread_count_does_not_change_a_single_bit() {
        // Irregular symmetric graph big enough to span multiple chunks.
        let n = 10_000usize;
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for v in 0..n {
            if v % 97 == 0 {
                continue; // sprinkle isolated (dangling) nodes
            }
            for w in [(v * 7 + 1) % n, (v * 13 + 5) % n] {
                if w % 97 != 0 && w != v {
                    adj[v].push(w);
                    adj[w].push(v);
                }
            }
        }
        let g = FlatCsr::from_adj(&adj).unwrap();
        let serial = pagerank(&g, &KernelConfig::default());
        let threaded = pagerank(&g, &KernelConfig::builder().threads(8).build().unwrap());
        assert_eq!(serial, threaded, "pagerank must be thread-count invariant");
    }
}
