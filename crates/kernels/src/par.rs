//! Deterministic fan-out: map a closure over fixed-size chunks of `0..n`.
//!
//! The determinism contract all kernels lean on: chunk geometry depends only
//! on `n` and the chunk size — never on the thread count — and results come
//! back **in chunk order**. Floating-point reductions performed chunk-partial
//! first, then summed in chunk order, are therefore bit-identical whether the
//! kernel runs on 1 thread or 16. Threads only decide *who* computes a chunk,
//! never *what* or *in which order it is reduced*.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Default chunk granularity for node-parallel sweeps. Big enough that the
/// per-chunk bookkeeping (one mutex lock per chunk) is noise, small enough
/// that work-stealing over the chunk counter balances skewed degrees.
pub(crate) const NODE_CHUNK: usize = 4096;

fn chunk_range(c: usize, chunk: usize, n: usize) -> Range<usize> {
    let start = c * chunk;
    start..n.min(start + chunk)
}

/// Applies `work` to each chunk of `0..n` and returns the per-chunk results
/// in chunk order. With `threads <= 1` this is a plain serial loop; otherwise
/// chunks are claimed from a shared atomic counter by a scoped thread pool.
pub(crate) fn map_chunks<R, F>(n: usize, chunk: usize, threads: usize, work: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let chunk = chunk.max(1);
    let n_chunks = n.div_ceil(chunk);
    if n_chunks == 0 {
        return Vec::new();
    }
    if threads <= 1 || n_chunks == 1 {
        return (0..n_chunks)
            .map(|c| work(chunk_range(c, chunk, n)))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n_chunks).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads.min(n_chunks) {
            s.spawn(|| loop {
                let c = next.fetch_add(1, Ordering::Relaxed);
                if c >= n_chunks {
                    break;
                }
                let r = work(chunk_range(c, chunk, n));
                *slots[c].lock() = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .enumerate()
        // Every slot was filled before scope exit; the fallback recompute
        // keeps this a total function without a panic path.
        .map(|(c, m)| {
            m.into_inner()
                .unwrap_or_else(|| work(chunk_range(c, chunk, n)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_results_are_identical_and_ordered() {
        let n = 10_000usize;
        let f = |r: Range<usize>| r.map(|i| i as u64).sum::<u64>();
        let serial = map_chunks(n, 128, 1, f);
        let parallel = map_chunks(n, 128, 7, f);
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), n.div_ceil(128));
        let total: u64 = serial.iter().sum();
        assert_eq!(total, (n as u64 - 1) * n as u64 / 2);
    }

    #[test]
    fn empty_range_yields_no_chunks() {
        let out = map_chunks(0, 64, 4, |r| r.len());
        assert!(out.is_empty());
    }

    #[test]
    fn chunk_geometry_is_independent_of_threads() {
        for threads in [1usize, 2, 5, 16] {
            let ranges = map_chunks(1000, 300, threads, |r| (r.start, r.end));
            assert_eq!(ranges, vec![(0, 300), (300, 600), (600, 900), (900, 1000)]);
        }
    }
}
