//! The GAP sliding queue: all BFS frontiers live in one append-only buffer;
//! the "current frontier" is a window over it. Pushes go past the window,
//! [`SlidingQueue::slide_window`] advances the window over exactly the nodes
//! pushed since the last slide. Compared to two ping-pong `Vec`s this keeps
//! every frontier contiguous (the whole traversal order is `shared` at the
//! end) and never re-allocates once the buffer has grown.

#[derive(Debug, Clone, Default)]
pub struct SlidingQueue {
    shared: Vec<u32>,
    window_start: usize,
    window_end: usize,
}

impl SlidingQueue {
    pub fn new() -> SlidingQueue {
        SlidingQueue::default()
    }

    pub fn with_capacity(cap: usize) -> SlidingQueue {
        SlidingQueue {
            shared: Vec::with_capacity(cap),
            window_start: 0,
            window_end: 0,
        }
    }

    /// Appends a node beyond the current window (visible after the next
    /// [`SlidingQueue::slide_window`]).
    pub fn push(&mut self, v: u32) {
        self.shared.push(v);
    }

    /// Bulk append, preserving order.
    pub fn extend_from_slice(&mut self, vs: &[u32]) {
        self.shared.extend_from_slice(vs);
    }

    /// Advances the window to cover everything pushed since the last slide.
    pub fn slide_window(&mut self) {
        self.window_start = self.window_end;
        self.window_end = self.shared.len();
    }

    /// The current frontier.
    pub fn window(&self) -> &[u32] {
        &self.shared[self.window_start..self.window_end]
    }

    pub fn window_len(&self) -> usize {
        self.window_end - self.window_start
    }

    pub fn window_is_empty(&self) -> bool {
        self.window_start == self.window_end
    }

    /// Total nodes ever pushed — at BFS completion this is the number of
    /// reached nodes, and `shared` is the full visit order.
    pub fn total_pushed(&self) -> usize {
        self.shared.len()
    }

    /// Everything pushed so far, in push order.
    pub fn history(&self) -> &[u32] {
        &self.shared
    }

    /// Empties the queue, keeping the allocation.
    pub fn reset(&mut self) {
        self.shared.clear();
        self.window_start = 0;
        self.window_end = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_cover_successive_push_generations() {
        let mut q = SlidingQueue::new();
        q.push(7);
        assert!(q.window_is_empty(), "pushes are invisible until a slide");
        q.slide_window();
        assert_eq!(q.window(), &[7]);

        q.push(1);
        q.push(2);
        assert_eq!(q.window(), &[7], "window is stable while pushing");
        q.slide_window();
        assert_eq!(q.window(), &[1, 2]);

        q.slide_window();
        assert!(
            q.window_is_empty(),
            "sliding with no pushes empties the window"
        );
        assert_eq!(q.history(), &[7, 1, 2]);
        assert_eq!(q.total_pushed(), 3);
    }

    #[test]
    fn reset_keeps_capacity_and_clears_state() {
        let mut q = SlidingQueue::with_capacity(16);
        q.extend_from_slice(&[1, 2, 3]);
        q.slide_window();
        q.reset();
        assert!(q.window_is_empty());
        assert_eq!(q.total_pushed(), 0);
        assert!(q.shared.capacity() >= 16);
    }
}
