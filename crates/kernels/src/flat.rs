//! The kernel-facing graph representation: a minimal flat CSR.
//!
//! Kernels operate on an *untyped, undirected* view of a graph: one offsets
//! array and one `u32` target arena. The struct is deliberately smaller than
//! `hetgraph::Csr` (no edge ids, 32-bit targets) — GAP-style kernels touch
//! every adjacency entry per sweep, so halving the arena width roughly halves
//! the memory traffic of the inner loops.
//!
//! Two constructors cover both producers in this workspace:
//!
//! * [`FlatCsr::from_view`] snapshots any [`GraphView`] (a `HetGraph`, a
//!   `DeltaGraph`, or a pinned `GraphSnapshot` from the scoring engine).
//! * [`FlatCsr::from_adj`] converts the adjacency-list graphs the explainer
//!   uses (communities and their line graphs).

use xfraud_hetgraph::GraphView;

use crate::error::KernelError;

/// Flat CSR adjacency: `neighbors(v)` is a contiguous `&[u32]` slice.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FlatCsr {
    offsets: Vec<usize>,
    targets: Vec<u32>,
}

impl FlatCsr {
    /// Snapshots the out-adjacency of `g`. The slice order per node is the
    /// view's neighbor order (edge-id order), so two structurally identical
    /// views produce bit-identical CSRs.
    pub fn from_view(g: &(impl GraphView + ?Sized)) -> Result<FlatCsr, KernelError> {
        let n = g.n_nodes();
        if n > u32::MAX as usize {
            return Err(KernelError::TooLarge { n_nodes: n });
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut targets = Vec::new();
        for v in 0..n {
            let (base, overlay) = g.neighbor_parts(v);
            targets.extend(base.iter().map(|&w| w as u32));
            targets.extend(overlay.iter().map(|&w| w as u32));
            offsets.push(targets.len());
        }
        Ok(FlatCsr { offsets, targets })
    }

    /// Builds a CSR from explicit adjacency lists (the explainer's community
    /// and line-graph representation). Every target must be `< adj.len()`.
    pub fn from_adj(adj: &[Vec<usize>]) -> Result<FlatCsr, KernelError> {
        let n = adj.len();
        if n > u32::MAX as usize {
            return Err(KernelError::TooLarge { n_nodes: n });
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut targets = Vec::with_capacity(adj.iter().map(Vec::len).sum());
        for nbrs in adj {
            for &w in nbrs {
                if w >= n {
                    return Err(KernelError::NodeOutOfRange {
                        node: w,
                        n_nodes: n,
                    });
                }
                targets.push(w as u32);
            }
            offsets.push(targets.len());
        }
        Ok(FlatCsr { offsets, targets })
    }

    pub fn n_nodes(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Number of adjacency entries (directed edge slots).
    pub fn n_edges(&self) -> usize {
        self.targets.len()
    }

    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Allocation-free neighbor slice of `v`.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xfraud_hetgraph::{GraphBuilder, NodeType};

    #[test]
    fn from_adj_matches_input_lists() {
        let adj = vec![vec![1, 2], vec![0], vec![0], vec![]];
        let g = FlatCsr::from_adj(&adj).unwrap();
        assert_eq!(g.n_nodes(), 4);
        assert_eq!(g.n_edges(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.neighbors(3), &[] as &[u32]);
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn from_adj_rejects_out_of_range_targets() {
        let adj = vec![vec![5]];
        assert_eq!(
            FlatCsr::from_adj(&adj),
            Err(KernelError::NodeOutOfRange {
                node: 5,
                n_nodes: 1
            })
        );
    }

    #[test]
    fn from_view_matches_hetgraph_neighbor_slices() {
        let mut b = GraphBuilder::new(1);
        let t0 = b.add_txn([1.0], Some(false));
        let t1 = b.add_txn([2.0], None);
        let p = b.add_entity(NodeType::Pmt);
        b.link(t0, p).unwrap();
        b.link(t1, p).unwrap();
        let g = b.finish().unwrap();

        let flat = FlatCsr::from_view(&g).unwrap();
        assert_eq!(flat.n_nodes(), g.n_nodes());
        for v in 0..g.n_nodes() {
            let want: Vec<u32> = g.neighbor_slice(v).iter().map(|&w| w as u32).collect();
            assert_eq!(flat.neighbors(v), want.as_slice());
        }
    }
}
