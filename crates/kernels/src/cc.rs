//! Connected components by synchronous (Jacobi) min-label propagation.
//!
//! Every sweep, each node takes the minimum label among itself and its
//! neighbors, reading only the previous sweep's labels — so the result of a
//! sweep is a pure function of the previous label array and chunk-parallel
//! execution is trivially deterministic. Converges in O(diameter) sweeps;
//! the final label of a component is its smallest member id.

use crate::config::KernelConfig;
use crate::flat::FlatCsr;
use crate::par::{map_chunks, NODE_CHUNK};

/// Component labels: `labels[v]` is the smallest node id in `v`'s component.
pub fn connected_components(g: &FlatCsr, cfg: &KernelConfig) -> Vec<u32> {
    let n = g.n_nodes();
    let mut labels: Vec<u32> = (0..n as u32).collect();
    loop {
        let chunks = map_chunks(n, NODE_CHUNK, cfg.threads(), |r| {
            let mut new_labels = Vec::with_capacity(r.len());
            let mut changed = 0usize;
            for v in r {
                let mut m = labels[v];
                for &u in g.neighbors(v) {
                    m = m.min(labels[u as usize]);
                }
                if m != labels[v] {
                    changed += 1;
                }
                new_labels.push(m);
            }
            (new_labels, changed)
        });

        let mut changed = 0usize;
        let mut at = 0usize;
        for (new_labels, chunk_changed) in chunks {
            labels[at..at + new_labels.len()].copy_from_slice(&new_labels);
            at += new_labels.len();
            changed += chunk_changed;
        }
        if changed == 0 {
            return labels;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_components_get_their_min_ids() {
        // {0,1,2} chained, {3,4} paired, {5} isolated.
        let adj = vec![vec![1], vec![0, 2], vec![1], vec![4], vec![3], vec![]];
        let g = FlatCsr::from_adj(&adj).unwrap();
        let labels = connected_components(&g, &KernelConfig::default());
        assert_eq!(labels, vec![0, 0, 0, 3, 3, 5]);
    }

    #[test]
    fn long_path_converges_to_a_single_label() {
        let n = 5000usize;
        let adj: Vec<Vec<usize>> = (0..n)
            .map(|v| {
                let mut a = Vec::new();
                if v > 0 {
                    a.push(v - 1);
                }
                if v + 1 < n {
                    a.push(v + 1);
                }
                a
            })
            .collect();
        let g = FlatCsr::from_adj(&adj).unwrap();
        let serial = connected_components(&g, &KernelConfig::default());
        let threaded =
            connected_components(&g, &KernelConfig::builder().threads(6).build().unwrap());
        assert!(serial.iter().all(|&l| l == 0));
        assert_eq!(serial, threaded);
    }
}
