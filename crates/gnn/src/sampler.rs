use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use xfraud_hetgraph::{GraphView, GraphViewExt, NodeId, ALL_NODE_TYPES};

use crate::batch::SubgraphBatch;

/// Produces the sampled subgraph a model trains/infers on, given a batch of
/// seed transactions. Samplers read the graph through
/// [`GraphView`], so the same implementation walks a frozen
/// [`xfraud_hetgraph::HetGraph`] or a live streaming
/// [`xfraud_hetgraph::DeltaGraph`] overlay unchanged. The sampler is the *only* difference between xFraud
/// detector and detector+ (§3.2.3), which is exactly what the Fig. 10
/// ablation isolates.
///
/// The trait is object-safe, and `&S`, `Box<S>` and `Arc<S>` (including
/// their `dyn Sampler` forms) all implement it, so pipelines and serving
/// engines can hold a `dyn Sampler` instead of being monomorphised per
/// sampler type.
pub trait Sampler {
    fn sample(&self, g: &dyn GraphView, seeds: &[NodeId], rng: &mut StdRng) -> SubgraphBatch;

    /// Human-readable name for experiment output.
    fn name(&self) -> &'static str;

    /// Stable identity of this sampler's *shape*: its name folded with every
    /// parameter that changes which subgraph a seed maps to. Serving-side
    /// subgraph caches key on it, so two samplers with equal shape keys must
    /// sample identical subgraphs given equal RNG streams.
    fn shape_key(&self) -> u64;
}

/// FNV-1a over a name and parameter list — the [`Sampler::shape_key`]
/// convention shared by all built-in samplers.
pub fn shape_key_of(name: &str, params: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    for b in name.bytes() {
        eat(b);
    }
    for &p in params {
        for b in p.to_le_bytes() {
            eat(b);
        }
    }
    h
}

macro_rules! deref_sampler {
    ($($ty:ty),+) => {$(
        impl<S: Sampler + ?Sized> Sampler for $ty {
            fn sample(&self, g: &dyn GraphView, seeds: &[NodeId], rng: &mut StdRng) -> SubgraphBatch {
                (**self).sample(g, seeds, rng)
            }
            fn name(&self) -> &'static str {
                (**self).name()
            }
            fn shape_key(&self) -> u64 {
                (**self).shape_key()
            }
        }
    )+};
}

deref_sampler!(&S, Box<S>, std::sync::Arc<S>);

/// GraphSAGE-style uniform sampling (detector+): expand each hop by at most
/// `per_hop` uniformly-chosen *new* neighbours per node, `k_hops` times.
/// Cheap on sparse graphs — no per-type bookkeeping at all.
#[derive(Debug, Clone)]
pub struct SageSampler {
    pub k_hops: usize,
    pub per_hop: usize,
}

impl SageSampler {
    pub fn new(k_hops: usize, per_hop: usize) -> Self {
        SageSampler { k_hops, per_hop }
    }
}

impl Sampler for SageSampler {
    fn sample(&self, g: &dyn GraphView, seeds: &[NodeId], rng: &mut StdRng) -> SubgraphBatch {
        let mut in_set = vec![false; g.n_nodes()];
        let mut nodes: Vec<NodeId> = Vec::new();
        for &s in seeds {
            if !in_set[s] {
                in_set[s] = true;
                nodes.push(s);
            }
        }
        let mut frontier: Vec<NodeId> = nodes.clone();
        let mut scratch: Vec<NodeId> = Vec::new();
        for _ in 0..self.k_hops {
            let mut next = Vec::new();
            for &v in &frontier {
                scratch.clear();
                scratch.extend(g.neighbors(v).filter(|&u| !in_set[u]));
                // The candidate list must hold each neighbour once or the
                // draw is biased towards parallel-edge neighbours; CSR
                // adjacency is not sorted, so dedup alone is not enough.
                scratch.sort_unstable();
                scratch.dedup();
                // Uniform choice of up to per_hop new neighbours.
                let take = self.per_hop.min(scratch.len());
                scratch.partial_shuffle(rng, take);
                for &u in &scratch[..take] {
                    if !in_set[u] {
                        in_set[u] = true;
                        nodes.push(u);
                        next.push(u);
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        SubgraphBatch::from_nodes(g, &nodes, seeds)
    }

    fn name(&self) -> &'static str {
        "graphsage"
    }

    fn shape_key(&self) -> u64 {
        shape_key_of(self.name(), &[self.k_hops as u64, self.per_hop as u64])
    }
}

/// HGSampling as used by HGT (the sampler of the original xFraud detector).
///
/// Keeps a per-type *budget* of candidate nodes scored by accumulated
/// normalised degree; every step it samples `width_per_seed × |seeds|`
/// nodes **per type** with probability ∝ budget², trying to keep all
/// node/edge types similarly represented in the subgraph. On sparse,
/// txn-dominated transaction graphs this balance is exactly what makes it
/// expensive: rare entity types force the sampler to range far beyond the
/// seeds' neighbourhoods, the budget table is rebuilt and rescanned every
/// step, and the resulting subgraphs are much larger than GraphSAGE's —
/// the overhead detector+ removes (Fig. 10: 5–7× inference speedup).
#[derive(Debug, Clone)]
pub struct HgSampler {
    /// Number of sampling iterations (the "depth" of HGSampling).
    pub steps: usize,
    /// Nodes added per type per step, per seed (pyHGT's `sampled_number`
    /// scales with the batch the same way).
    pub width_per_seed: usize,
}

impl HgSampler {
    pub fn new(steps: usize, width_per_seed: usize) -> Self {
        HgSampler {
            steps,
            width_per_seed,
        }
    }

    fn add_budget(g: &dyn GraphView, v: NodeId, in_set: &[bool], budget: &mut [f32]) {
        let deg = g.degree(v).max(1) as f32;
        for u in g.neighbors(v) {
            if !in_set[u] {
                budget[u] += 1.0 / deg;
            }
        }
    }
}

impl Sampler for HgSampler {
    fn sample(&self, g: &dyn GraphView, seeds: &[NodeId], rng: &mut StdRng) -> SubgraphBatch {
        let n = g.n_nodes();
        let mut in_set = vec![false; n];
        let mut nodes: Vec<NodeId> = Vec::new();
        let mut budget = vec![0.0f32; n];
        for &s in seeds {
            if !in_set[s] {
                in_set[s] = true;
                nodes.push(s);
            }
        }
        for &s in &nodes.clone() {
            Self::add_budget(g, s, &in_set, &mut budget);
        }

        let width = self.width_per_seed * seeds.len().max(1);
        for _ in 0..self.steps {
            let mut added_any = false;
            for ty in ALL_NODE_TYPES {
                // Gather this type's candidates and their squared budgets —
                // the per-type pass over the whole budget table is part of
                // what makes HGSampling expensive.
                let cand: Vec<(NodeId, f32)> = (0..n)
                    .filter(|&v| !in_set[v] && budget[v] > 0.0 && g.node_type(v) == ty)
                    .map(|v| (v, budget[v] * budget[v]))
                    .collect();
                if cand.is_empty() {
                    continue;
                }
                // Weighted sampling without replacement (Efraimidis–
                // Spirakis A-Res): key = u^(1/w), keep the top `take`.
                let take = width.min(cand.len());
                let mut keyed: Vec<(f32, NodeId)> = cand
                    .iter()
                    .map(|&(v, w)| {
                        let u: f32 = rng.gen_range(f32::MIN_POSITIVE..1.0);
                        (u.powf(1.0 / w.max(1e-12)), v)
                    })
                    .collect();
                keyed.sort_by(|a, b| b.0.total_cmp(&a.0));
                for &(_, v) in keyed.iter().take(take) {
                    in_set[v] = true;
                    nodes.push(v);
                    budget[v] = 0.0;
                    added_any = true;
                }
                // Budget updates after the draw (pyHGT adds the sampled
                // nodes' neighbourhoods for the next layer).
                for &(_, v) in keyed.iter().take(take) {
                    Self::add_budget(g, v, &in_set, &mut budget);
                }
            }
            if !added_any {
                break;
            }
        }
        SubgraphBatch::from_nodes(g, &nodes, seeds)
    }

    fn name(&self) -> &'static str {
        "hgsampling"
    }

    fn shape_key(&self) -> u64 {
        shape_key_of(
            self.name(),
            &[self.steps as u64, self.width_per_seed as u64],
        )
    }
}

/// No sampling at all: the batch is the full graph. Used by the explainer
/// (communities are small) and by tests.
#[derive(Debug, Clone, Default)]
pub struct FullGraphSampler;

impl Sampler for FullGraphSampler {
    fn sample(&self, g: &dyn GraphView, seeds: &[NodeId], _rng: &mut StdRng) -> SubgraphBatch {
        let nodes: Vec<NodeId> = (0..g.n_nodes()).collect();
        SubgraphBatch::from_nodes(g, &nodes, seeds)
    }

    fn name(&self) -> &'static str {
        "full"
    }

    fn shape_key(&self) -> u64 {
        shape_key_of(self.name(), &[])
    }
}

/// The serving/explainer subgraph recipe: each seed's entire connected
/// community in deterministic BFS (edge) order, truncated at `max_nodes`
/// collected nodes per seed. RNG-free — the same seed always yields the
/// same subgraph — which is what makes cached ego-subgraphs legal in the
/// online scoring path: `Pipeline::score_transaction` and the
/// `ScoringEngine` both run on this sampler, so one cached batch serves
/// both bit-identically.
#[derive(Debug, Clone)]
pub struct CommunitySampler {
    /// BFS truncation bound per seed (guards against pathological giant
    /// components, like `community_of`'s cap).
    pub max_nodes: usize,
}

impl CommunitySampler {
    pub fn new(max_nodes: usize) -> Self {
        CommunitySampler { max_nodes }
    }
}

impl Sampler for CommunitySampler {
    fn sample(&self, g: &dyn GraphView, seeds: &[NodeId], _rng: &mut StdRng) -> SubgraphBatch {
        let mut in_set = vec![false; g.n_nodes()];
        let mut nodes: Vec<NodeId> = Vec::new();
        for &s in seeds {
            if in_set[s] {
                continue;
            }
            in_set[s] = true;
            nodes.push(s);
            let start = nodes.len() - 1;
            let mut cursor = start;
            while cursor < nodes.len() && nodes.len() - start < self.max_nodes {
                let v = nodes[cursor];
                cursor += 1;
                for u in g.neighbors(v) {
                    if !in_set[u] {
                        in_set[u] = true;
                        nodes.push(u);
                        if nodes.len() - start >= self.max_nodes {
                            break;
                        }
                    }
                }
            }
        }
        SubgraphBatch::from_nodes(g, &nodes, seeds)
    }

    fn name(&self) -> &'static str {
        "community"
    }

    fn shape_key(&self) -> u64 {
        shape_key_of(self.name(), &[self.max_nodes as u64])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use xfraud_datagen::{Dataset, DatasetPreset};
    use xfraud_hetgraph::{GraphBuilder, HetGraph, NodeType};

    fn graph() -> HetGraph {
        Dataset::generate(DatasetPreset::EbaySmallSim, 3).graph
    }

    fn fraud_seeds(g: &HetGraph, n: usize) -> Vec<NodeId> {
        g.labeled_txns()
            .into_iter()
            .filter(|&(_, y)| y)
            .map(|(v, _)| v)
            .take(n)
            .collect()
    }

    #[test]
    fn sage_sampler_bounds_growth_and_contains_seeds() {
        let g = graph();
        let seeds = fraud_seeds(&g, 8);
        let mut rng = StdRng::seed_from_u64(1);
        let s = SageSampler::new(2, 4);
        let batch = s.sample(&g, &seeds, &mut rng);
        assert!(batch.validate());
        for (i, &seed) in seeds.iter().enumerate() {
            assert_eq!(batch.global_ids[batch.targets[i]], seed);
        }
        // 8 seeds, ≤ 4 new per node over 2 hops → hard cap 8 + 8*4 + 40*4.
        assert!(batch.n_nodes() <= 8 + 8 * 4 + 40 * 4);
        assert!(
            batch.n_nodes() > seeds.len(),
            "sampling must expand beyond the seeds"
        );
    }

    #[test]
    fn hg_sampler_balances_types_better_than_sage() {
        let g = graph();
        let seeds = fraud_seeds(&g, 8);
        let mut rng = StdRng::seed_from_u64(2);
        let hg = HgSampler::new(2, 8).sample(&g, &seeds, &mut rng);
        assert!(hg.validate());
        // HGSampling must pull in several node types, not only txns.
        let mut counts = [0usize; 5];
        for &t in &hg.node_types {
            counts[t.index()] += 1;
        }
        let nonzero = counts.iter().filter(|&&c| c > 0).count();
        assert!(nonzero >= 4, "type counts {counts:?}");
    }

    #[test]
    fn full_sampler_returns_everything() {
        let g = graph();
        let seeds = fraud_seeds(&g, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let batch = FullGraphSampler.sample(&g, &seeds, &mut rng);
        assert_eq!(batch.n_nodes(), g.n_nodes());
        assert_eq!(batch.n_edges(), g.n_directed_edges());
    }

    #[test]
    fn samplers_are_deterministic_given_a_seeded_rng() {
        let g = graph();
        let seeds = fraud_seeds(&g, 4);
        let a = SageSampler::new(2, 4).sample(&g, &seeds, &mut StdRng::seed_from_u64(7));
        let b = SageSampler::new(2, 4).sample(&g, &seeds, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.global_ids, b.global_ids);
    }

    /// Regression: with parallel edges in the adjacency (a multigraph), the
    /// candidate list used to keep duplicates (`dedup` on an unsorted list
    /// is a no-op), so `per_hop` slots could be wasted on copies of one
    /// neighbour. With 4 distinct neighbours and `per_hop = 4`, every seed
    /// must always reach all 4, whatever the RNG does.
    #[test]
    fn sage_sampler_is_unbiased_on_parallel_edges() {
        let mut b = GraphBuilder::new(1);
        let t = b.add_txn([0.0], Some(false));
        let hub = b.add_entity(NodeType::Pmt);
        for _ in 0..5 {
            b.link(t, hub).unwrap(); // parallel edges t—hub
        }
        let others: Vec<NodeId> = [NodeType::Email, NodeType::Addr, NodeType::Buyer]
            .into_iter()
            .map(|ty| {
                let e = b.add_entity(ty);
                b.link(t, e).unwrap();
                e
            })
            .collect();
        let g = b.finish().unwrap();
        let s = SageSampler::new(1, 4);
        for seed in 0..32 {
            let mut rng = StdRng::seed_from_u64(seed);
            let batch = s.sample(&g, &[t], &mut rng);
            assert_eq!(batch.n_nodes(), 5, "seed {seed}: {:?}", batch.global_ids);
            for &e in others.iter().chain(std::iter::once(&hub)) {
                assert!(batch.global_ids.contains(&e), "seed {seed} missed node {e}");
            }
        }
    }

    #[test]
    fn community_sampler_is_rng_free_and_bounded() {
        let g = graph();
        let seeds = fraud_seeds(&g, 3);
        let a = CommunitySampler::new(64).sample(&g, &seeds, &mut StdRng::seed_from_u64(1));
        let b = CommunitySampler::new(64).sample(&g, &seeds, &mut StdRng::seed_from_u64(999));
        assert_eq!(a.global_ids, b.global_ids, "RNG must not matter");
        assert!(a.validate());
        assert!(a.n_nodes() <= 64 * seeds.len());
        for (i, &seed) in seeds.iter().enumerate() {
            assert_eq!(a.global_ids[a.targets[i]], seed);
        }
    }

    #[test]
    fn shape_keys_separate_samplers_and_parameters() {
        let keys = [
            SageSampler::new(2, 8).shape_key(),
            SageSampler::new(2, 4).shape_key(),
            SageSampler::new(3, 8).shape_key(),
            HgSampler::new(2, 8).shape_key(),
            FullGraphSampler.shape_key(),
            CommunitySampler::new(4000).shape_key(),
            CommunitySampler::new(400).shape_key(),
        ];
        let mut uniq = keys.to_vec();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), keys.len(), "keys collide: {keys:?}");
        // Equal configuration ⇒ equal key, also through a trait object.
        let s = SageSampler::new(2, 8);
        let dy: &dyn Sampler = &s;
        assert_eq!(dy.shape_key(), SageSampler::new(2, 8).shape_key());
    }

    #[test]
    fn samplers_work_as_trait_objects() {
        let g = graph();
        let seeds = fraud_seeds(&g, 4);
        let boxed: Box<dyn Sampler + Send + Sync> = Box::new(SageSampler::new(2, 4));
        let direct = SageSampler::new(2, 4).sample(&g, &seeds, &mut StdRng::seed_from_u64(5));
        let via_box = boxed.sample(&g, &seeds, &mut StdRng::seed_from_u64(5));
        assert_eq!(direct.global_ids, via_box.global_ids);
        assert_eq!(boxed.name(), "graphsage");
        let arc: std::sync::Arc<dyn Sampler + Send + Sync> = std::sync::Arc::new(FullGraphSampler);
        let via_arc = arc.sample(&g, &seeds, &mut StdRng::seed_from_u64(5));
        assert_eq!(via_arc.n_nodes(), g.n_nodes());
    }

    #[test]
    fn sampled_targets_are_txns() {
        let g = graph();
        let seeds = fraud_seeds(&g, 4);
        let mut rng = StdRng::seed_from_u64(4);
        let batch = HgSampler::new(1, 4).sample(&g, &seeds, &mut rng);
        for &t in &batch.targets {
            assert_eq!(batch.node_types[t], NodeType::Txn);
        }
    }
}
