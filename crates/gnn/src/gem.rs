use std::rc::Rc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use xfraud_hetgraph::ALL_EDGE_TYPES;
use xfraud_nn::{Ffn, Layer, Linear, ParamStore, Session};
use xfraud_tensor::{Tensor, Var};

use crate::batch::SubgraphBatch;
use crate::detector::DetectorConfig;
use crate::model::{Masks, Model};

/// The GEM baseline (Liu et al., CIKM'18) as the paper frames it: "a system
/// which directly applies a vanilla GCN to a heterogeneous graph". Each
/// layer computes, per node,
///
/// `h' = ReLU( W_self·h + Σ_φ mean_{u ∈ N_φ(v)} h_u · M_φ )`
///
/// — a **per-relation mean aggregation with per-relation projections and no
/// attention whatsoever**. The absence of attention is why GEM posts the
/// fastest inference in Table 3 (0.0167 s/batch vs xFraud's 0.0799) while
/// losing on AUC.
pub struct GemModel {
    pub cfg: DetectorConfig,
    store: ParamStore,
    input_proj: Linear,
    layers: Vec<GemLayer>,
    head: Ffn,
}

struct GemLayer {
    w_self: Linear,
    /// One projection per relation type `M_φ`.
    per_type: Vec<Linear>,
}

impl GemModel {
    pub fn new(cfg: DetectorConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let input_proj = Linear::new(
            &mut store,
            "input_proj",
            cfg.feature_dim,
            cfg.hidden,
            true,
            &mut rng,
        );
        let layers = (0..cfg.layers)
            .map(|l| GemLayer {
                w_self: Linear::new(
                    &mut store,
                    &format!("gem{l}.self"),
                    cfg.hidden,
                    cfg.hidden,
                    false,
                    &mut rng,
                ),
                per_type: ALL_EDGE_TYPES
                    .iter()
                    .map(|t| {
                        Linear::new(
                            &mut store,
                            &format!("gem{l}.m{}", t.index()),
                            cfg.hidden,
                            cfg.hidden,
                            false,
                            &mut rng,
                        )
                    })
                    .collect(),
            })
            .collect();
        let head = Ffn::new(
            &mut store,
            "head",
            cfg.hidden + cfg.feature_dim,
            cfg.hidden,
            2,
            2,
            cfg.dropout,
            &mut rng,
        );
        GemModel {
            cfg,
            store,
            input_proj,
            layers,
            head,
        }
    }
}

impl GemLayer {
    fn forward(
        &self,
        sess: &mut Session,
        store: &ParamStore,
        h: Var,
        batch: &SubgraphBatch,
        edge_mask: Option<Var>,
    ) -> Var {
        let n = batch.n_nodes();
        let mut out = self.w_self.forward(sess, store, h);
        for (ti, lin) in self.per_type.iter().enumerate() {
            // Edges of this relation type.
            let ids: Vec<usize> = (0..batch.n_edges())
                .filter(|&e| batch.edge_ty[e].index() == ti)
                .collect();
            if ids.is_empty() {
                continue;
            }
            let srcs: Vec<usize> = ids.iter().map(|&e| batch.edge_src[e]).collect();
            let dsts: Rc<Vec<usize>> = Rc::new(ids.iter().map(|&e| batch.edge_dst[e]).collect());
            // Mean normaliser per target node (constant, no gradient).
            let mut counts = vec![0.0f32; n];
            for &d in dsts.iter() {
                counts[d] += 1.0;
            }
            let recip: Vec<f32> = counts
                .iter()
                .map(|&c| if c > 0.0 { 1.0 / c } else { 0.0 })
                .collect();
            let recip = sess.constant(Tensor::column(recip));

            let mut msg = sess.tape.gather_rows(h, Rc::new(srcs));
            if let Some(mask) = edge_mask {
                let sub_mask = sess.tape.gather_rows(mask, Rc::new(ids));
                msg = sess.tape.mul_col(msg, sub_mask);
            }
            let summed = sess.tape.segment_sum(msg, dsts, n);
            let mean = sess.tape.mul_col(summed, recip);
            let proj = lin.forward(sess, store, mean);
            out = sess.tape.add(out, proj);
        }
        let out = sess.tape.add(out, h); // residual
        sess.tape.relu(out)
    }
}

impl Model for GemModel {
    fn forward(
        &self,
        sess: &mut Session,
        batch: &SubgraphBatch,
        train: bool,
        rng: &mut StdRng,
        masks: &Masks,
    ) -> Var {
        let mut x = sess.constant(batch.features.clone());
        if let Some(fmask) = masks.feature_mask {
            x = sess.tape.mul(x, fmask);
        }
        let mut h = self.input_proj.forward(sess, &self.store, x);
        for layer in &self.layers {
            h = layer.forward(sess, &self.store, h, batch, masks.edge_mask);
        }
        let tgt = Rc::new(batch.targets.clone());
        let h_t = sess.tape.gather_rows(h, Rc::clone(&tgt));
        let h_t = sess.tape.tanh(h_t);
        let x_t = sess.tape.gather_rows(x, tgt);
        let cat = sess.tape.concat_cols(&[h_t, x_t]);
        self.head.forward(sess, &self.store, cat, train, rng)
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn name(&self) -> &'static str {
        "gem"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{predict_scores, train_step};
    use crate::sampler::{FullGraphSampler, Sampler};
    use xfraud_hetgraph::{GraphBuilder, NodeType};
    use xfraud_nn::AdamW;

    #[test]
    fn gem_trains_on_separable_toy() {
        let mut b = GraphBuilder::new(4);
        let f0 = b.add_txn([2.0, -2.0, 0.1, 0.0], Some(true));
        let b0 = b.add_txn([-2.0, 2.0, 0.1, 0.0], Some(false));
        let p = b.add_entity(NodeType::Pmt);
        b.link(f0, p).unwrap();
        b.link(b0, p).unwrap();
        let g = b.finish().unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let batch = FullGraphSampler.sample(&g, &[0, 1], &mut rng);

        let mut model = GemModel::new(DetectorConfig::small(4, 4));
        let mut opt = AdamW::new(5e-3);
        let first = train_step(&mut model, &batch, &mut opt, &mut rng);
        let mut last = first;
        for _ in 0..60 {
            last = train_step(&mut model, &batch, &mut opt, &mut rng);
        }
        assert!(last < first * 0.6, "{first} → {last}");
        let s = predict_scores(&model, &batch, &mut rng);
        assert!(s[0] > s[1]);
    }
}
