use std::rc::Rc;

use rand::rngs::StdRng;

use xfraud_nn::{AdamW, ParamStore, Session};
use xfraud_tensor::{softmax_rows, Var};

use crate::batch::SubgraphBatch;

/// Explainer hooks threaded through every model's forward pass.
///
/// * `edge_mask` — `[n_edges, 1]`, already squashed to `(0,1)`; multiplies
///   each edge's message before aggregation (how GNNExplainer soft-removes
///   edges).
/// * `feature_mask` — `[n_nodes, F]`, already squashed; multiplies the input
///   features (the extended per-node feature masks of Appendix D).
#[derive(Default, Clone, Copy)]
pub struct Masks {
    pub edge_mask: Option<Var>,
    pub feature_mask: Option<Var>,
}

impl Masks {
    pub fn none() -> Self {
        Masks::default()
    }
}

/// A trainable node-classification model over [`SubgraphBatch`]es.
pub trait Model {
    /// Builds the forward computation and returns target logits `[n_targets, 2]`.
    fn forward(
        &self,
        sess: &mut Session,
        batch: &SubgraphBatch,
        train: bool,
        rng: &mut StdRng,
        masks: &Masks,
    ) -> Var;

    fn store(&self) -> &ParamStore;

    fn store_mut(&mut self) -> &mut ParamStore;

    fn name(&self) -> &'static str;
}

/// One optimisation step: forward → cross-entropy on the batch targets →
/// backward → AdamW. Returns the scalar loss.
pub fn train_step<M: Model>(
    model: &mut M,
    batch: &SubgraphBatch,
    opt: &mut AdamW,
    rng: &mut StdRng,
) -> f32 {
    debug_assert!(!batch.targets.is_empty(), "train_step on an empty batch");
    let mut sess = Session::new();
    let logits = model.forward(&mut sess, batch, true, rng, &Masks::none());
    let loss = sess
        .tape
        .softmax_cross_entropy(logits, Rc::new(batch.labels.clone()));
    let loss_value = sess.tape.value(loss).item();
    let grads = sess.backward(loss);
    opt.step(model.store_mut(), &grads);
    loss_value
}

/// Computes gradients for one batch *without* applying them — the DDP
/// simulator averages these across workers before stepping.
pub fn grad_step<M: Model>(
    model: &M,
    batch: &SubgraphBatch,
    rng: &mut StdRng,
) -> (f32, Vec<(xfraud_nn::ParamId, xfraud_tensor::Tensor)>) {
    let mut sess = Session::new();
    let logits = model.forward(&mut sess, batch, true, rng, &Masks::none());
    let loss = sess
        .tape
        .softmax_cross_entropy(logits, Rc::new(batch.labels.clone()));
    let loss_value = sess.tape.value(loss).item();
    let grads = sess.backward(loss);
    (loss_value, grads)
}

/// All-reduce of synchronous data parallelism: element-wise average of the
/// per-worker gradient sets, keyed by parameter index. Parameters missing
/// from some workers (inactive replicas) are averaged over the *active*
/// count, matching the behaviour of averaging only over workers that
/// produced a gradient this step. The map is a `BTreeMap` so the in-place
/// scaling pass (and any future iteration) runs in parameter-index order —
/// hash-order iteration here would not change values today, but the
/// determinism contract (D1) forbids relying on that.
pub fn average_grads(
    sets: &[Vec<(xfraud_nn::ParamId, xfraud_tensor::Tensor)>],
) -> std::collections::BTreeMap<usize, xfraud_tensor::Tensor> {
    let n = sets.len().max(1) as f32;
    let mut avg: std::collections::BTreeMap<usize, xfraud_tensor::Tensor> =
        std::collections::BTreeMap::new();
    for set in sets {
        for (id, gt) in set {
            avg.entry(id.index())
                .and_modify(|t| {
                    // xlint: allow(p1, reason = "all workers run the same model, so per-id grad shapes match by construction")
                    t.add_assign(gt).expect("same shape");
                })
                .or_insert_with(|| gt.clone());
        }
    }
    for t in avg.values_mut() {
        t.scale_assign(1.0 / n);
    }
    avg
}

/// Fraud probabilities for the batch targets (softmax column 1), eval mode.
pub fn predict_scores<M: Model>(model: &M, batch: &SubgraphBatch, rng: &mut StdRng) -> Vec<f32> {
    let mut sess = Session::new();
    let logits = model.forward(&mut sess, batch, false, rng, &Masks::none());
    let probs = softmax_rows(sess.tape.value(logits));
    (0..probs.rows()).map(|r| probs.get(r, 1)).collect()
}
