use std::rc::Rc;

use rand::rngs::StdRng;

use xfraud_hetgraph::{ALL_EDGE_TYPES, ALL_NODE_TYPES};
use xfraud_nn::{Embedding, Layer, Linear, ParamId, ParamStore, Session};
use xfraud_tensor::{Tensor, Var};

use crate::batch::SubgraphBatch;

/// One self-attentive heterogeneous convolution layer (§3.2.2, eq. 1–10).
///
/// Per edge `e = (v_s, v_t)` with `h` heads of width `d_k = d_out / h`:
///
/// * key/value vectors come from the source (plus the edge-type embedding on
///   the first layer, eq. 4/6), the query from the target (eq. 2);
/// * the per-head score is additive with **per-node-type** attention
///   vectors — `α-head^i = (K^i(v_s)·w^att_{τ(v_s)} + Q^i(v_t)·w^att_{τ(v_t)})
///   / √d_k` (eq. 8). The K/Q/V projections themselves are *shared across
///   types*, the paper's deliberate deviation from HGT ("we do not allow
///   target-specific aggregation ... shared weights among different types of
///   nodes are used");
/// * scores are softmax-normalised over each target's in-neighbours per head
///   (eq. 9), dropout is applied to the attention (eq. 10), messages
///   `V^i(v_s) · α-head^i` are concatenated over heads and summed into the
///   target (eq. 1), followed by a shared output projection, a residual
///   connection and ReLU.
///
/// The per-head block arithmetic is expressed with two constant indicator
/// matrices (`[d, h]` and `[h, d]`), keeping everything inside the autodiff
/// tape without bespoke ops.
#[derive(Debug, Clone)]
pub struct HetConvLayer {
    /// Shared K/Q/V projections (the paper's choice), or one per node type
    /// (HGT's, kept for the §3.2.1 ablation). `forward` picks per edge.
    k_lin: Projection,
    q_lin: Projection,
    v_lin: Projection,
    a_lin: Linear,
    /// `[n_node_types, d_out]` attention vector per source type.
    w_att_src: ParamId,
    /// `[n_node_types, d_out]` attention vector per target type.
    w_att_tgt: ParamId,
    /// Edge-type embeddings `φ(e)^emb`, added to the source input on the
    /// first layer only (`None` on deeper layers).
    edge_emb: Option<Embedding>,
    pub heads: usize,
    pub d_out: usize,
    pub dropout: f32,
    residual: bool,
}

/// One projection role (K, Q or V): shared across node types, or one
/// linear per type as in HGT.
#[derive(Debug, Clone)]
enum Projection {
    Shared(Linear),
    PerType(Vec<Linear>),
}

impl Projection {
    fn new(
        store: &mut ParamStore,
        name: &str,
        d_in: usize,
        d_out: usize,
        per_type: bool,
        rng: &mut StdRng,
    ) -> Self {
        if per_type {
            Projection::PerType(
                ALL_NODE_TYPES
                    .iter()
                    .map(|t| {
                        Linear::new(
                            store,
                            &format!("{name}.{}", t.label()),
                            d_in,
                            d_out,
                            false,
                            rng,
                        )
                    })
                    .collect(),
            )
        } else {
            Projection::Shared(Linear::new(store, name, d_in, d_out, false, rng))
        }
    }

    /// Applies the projection node-wise over `h` (`[n, d_in]`).
    ///
    /// The per-type variant computes each type's projection over all rows
    /// and zero-masks the rows of other types — 5 small matmuls instead of
    /// a scatter, which keeps everything on the existing tape ops.
    fn forward(
        &self,
        sess: &mut Session,
        store: &ParamStore,
        h: Var,
        node_types: &[xfraud_hetgraph::NodeType],
    ) -> Var {
        match self {
            Projection::Shared(lin) => lin.forward(sess, store, h),
            Projection::PerType(lins) => {
                let n = node_types.len();
                let mask_of = |ti: usize| -> Vec<f32> {
                    node_types
                        .iter()
                        .map(|t| if t.index() == ti { 1.0 } else { 0.0 })
                        .collect()
                };
                let Some((first, rest)) = lins.split_first() else {
                    // Unreachable via the constructors (every schema has at
                    // least one node type), but stay total: with no per-type
                    // projections, every row is masked away.
                    let zeros = sess.constant(Tensor::column(vec![0.0; n]));
                    return sess.tape.mul_col(h, zeros);
                };
                let mask = sess.constant(Tensor::column(mask_of(0)));
                let projected = first.forward(sess, store, h);
                let mut acc = sess.tape.mul_col(projected, mask);
                for (ti, lin) in rest.iter().enumerate() {
                    let mask = sess.constant(Tensor::column(mask_of(ti + 1)));
                    let projected = lin.forward(sess, store, h);
                    let masked = sess.tape.mul_col(projected, mask);
                    acc = sess.tape.add(acc, masked);
                }
                acc
            }
        }
    }
}

impl HetConvLayer {
    /// `first_layer` controls the edge-type embedding (eq. 4/6 add `φ(e)` on
    /// layer 1 only) and whether a residual is possible (`d_in == d_out`).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        d_in: usize,
        d_out: usize,
        heads: usize,
        dropout: f32,
        first_layer: bool,
        rng: &mut StdRng,
    ) -> Self {
        Self::with_projections(
            store,
            name,
            d_in,
            d_out,
            heads,
            dropout,
            first_layer,
            false,
            rng,
        )
    }

    /// Like [`HetConvLayer::new`] but optionally with HGT-style per-node-
    /// type K/Q/V projections — the configuration the paper ablated away
    /// ("we do not allow target-specific aggregation ... shared weights").
    #[allow(clippy::too_many_arguments)]
    pub fn with_projections(
        store: &mut ParamStore,
        name: &str,
        d_in: usize,
        d_out: usize,
        heads: usize,
        dropout: f32,
        first_layer: bool,
        per_type: bool,
        rng: &mut StdRng,
    ) -> Self {
        assert_eq!(d_out % heads, 0, "d_out must be divisible by heads");
        let n_nt = ALL_NODE_TYPES.len();
        let n_et = ALL_EDGE_TYPES.len();
        HetConvLayer {
            k_lin: Projection::new(store, &format!("{name}.k"), d_in, d_out, per_type, rng),
            q_lin: Projection::new(store, &format!("{name}.q"), d_in, d_out, per_type, rng),
            v_lin: Projection::new(store, &format!("{name}.v"), d_in, d_out, per_type, rng),
            a_lin: Linear::new(store, &format!("{name}.a"), d_out, d_out, false, rng),
            // eq. 8's attention weights: "random weights subject to uniform
            // distributions".
            w_att_src: store.register(
                format!("{name}.att_src"),
                Tensor::rand_uniform(n_nt, d_out, -0.1, 0.1, rng),
            ),
            w_att_tgt: store.register(
                format!("{name}.att_tgt"),
                Tensor::rand_uniform(n_nt, d_out, -0.1, 0.1, rng),
            ),
            edge_emb: first_layer
                .then(|| Embedding::zeros(store, &format!("{name}.edge_emb"), n_et, d_in)),
            heads,
            d_out,
            dropout,
            residual: d_in == d_out,
        }
    }

    /// The `[d, h]` head-block indicator: column `i` is 1 on head `i`'s
    /// coordinate block.
    fn head_indicator(&self) -> Tensor {
        let d_k = self.d_out / self.heads;
        let mut ind = Tensor::zeros(self.d_out, self.heads);
        for i in 0..self.heads {
            for j in 0..d_k {
                ind.set(i * d_k + j, i, 1.0);
            }
        }
        ind
    }

    /// Forward pass: `h` is `[n, d_in]`; returns `[n, d_out]`.
    #[allow(clippy::too_many_arguments)]
    pub fn forward(
        &self,
        sess: &mut Session,
        store: &ParamStore,
        h: Var,
        batch: &SubgraphBatch,
        edge_mask: Option<Var>,
        train: bool,
        rng: &mut StdRng,
    ) -> Var {
        let n = batch.n_nodes();
        let src = Rc::new(batch.edge_src.clone());
        let dst = Rc::new(batch.edge_dst.clone());

        // Source-side input, with φ(e) on the first layer (eq. 4/6).
        let mut h_src = sess.tape.gather_rows(h, Rc::clone(&src));
        if let Some(edge_emb) = &self.edge_emb {
            let ety: Vec<usize> = batch.edge_ty.iter().map(|t| t.index()).collect();
            let e_rows = edge_emb.forward_ids(sess, store, &ety);
            h_src = sess.tape.add(h_src, e_rows);
        }

        let src_types: Vec<xfraud_hetgraph::NodeType> = batch
            .edge_src
            .iter()
            .map(|&s| batch.node_types[s])
            .collect();
        let k = self.k_lin.forward(sess, store, h_src, &src_types); // [E, d]
        let v = self.v_lin.forward(sess, store, h_src, &src_types); // [E, d]
        let q_nodes = self.q_lin.forward(sess, store, h, &batch.node_types); // [n, d]
        let q = sess.tape.gather_rows(q_nodes, Rc::clone(&dst)); // [E, d]

        // Per-type attention vectors, one row per edge (eq. 8).
        let src_ty: Vec<usize> = batch
            .edge_src
            .iter()
            .map(|&s| batch.node_types[s].index())
            .collect();
        let dst_ty: Vec<usize> = batch
            .edge_dst
            .iter()
            .map(|&t| batch.node_types[t].index())
            .collect();
        let att_src_table = sess.param(store, self.w_att_src);
        let att_tgt_table = sess.param(store, self.w_att_tgt);
        let att_src = sess.tape.gather_rows(att_src_table, Rc::new(src_ty));
        let att_tgt = sess.tape.gather_rows(att_tgt_table, Rc::new(dst_ty));

        let sk = sess.tape.mul(k, att_src);
        let sq = sess.tape.mul(q, att_tgt);
        let s = sess.tape.add(sk, sq); // [E, d]
        let ind = sess.constant(self.head_indicator()); // [d, h]
        let scores = sess.tape.matmul(s, ind); // [E, h]
        let d_k = (self.d_out / self.heads) as f32;
        let mut scores = sess.tape.scale(scores, 1.0 / d_k.sqrt());

        // GNNExplainer hook, part 1: a log-mask on the attention scores.
        // Masked-down edges lose the softmax competition to their siblings,
        // which removes the degenerate "inflate every mask" optimum that a
        // purely multiplicative mask admits.
        if let Some(mask) = edge_mask {
            let lm = sess.tape.log_eps(mask, 1e-6); // [E, 1]
            let ones = sess.constant(Tensor::full(1, self.heads, 1.0));
            let lm_b = sess.tape.matmul(lm, ones); // [E, h]
            scores = sess.tape.add(scores, lm_b);
        }

        // eq. 9: softmax over each target's in-neighbours, per head.
        let alpha = sess.tape.segment_softmax(scores, Rc::clone(&dst), n);
        // eq. 10: dropout on the attention heads.
        let alpha = if train && self.dropout > 0.0 {
            sess.tape.dropout(alpha, self.dropout, rng)
        } else {
            alpha
        };

        // Broadcast each head's α over its value block and weight V.
        let ind_t = sess.constant(self.head_indicator().transpose()); // [h, d]
        let alpha_blocks = sess.tape.matmul(alpha, ind_t); // [E, d]
        let mut msg = sess.tape.mul(v, alpha_blocks);

        // GNNExplainer hook, part 2: multiplicative damping keeps the
        // edge-deletion semantics (a fully masked target aggregates ~0).
        if let Some(mask) = edge_mask {
            msg = sess.tape.mul_col(msg, mask);
        }

        // eq. 1: aggregate into targets; output projection + residual + ReLU.
        let agg = sess.tape.segment_sum(msg, dst, n);
        let mut out = self.a_lin.forward(sess, store, agg);
        if self.residual {
            out = sess.tape.add(out, h);
        }
        sess.tape.relu(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use xfraud_hetgraph::{GraphBuilder, NodeType};

    fn toy_batch() -> SubgraphBatch {
        let mut b = GraphBuilder::new(4);
        let t0 = b.add_txn([1.0, 0.0, 0.0, 0.0], Some(true));
        let t1 = b.add_txn([0.0, 1.0, 0.0, 0.0], Some(false));
        let p = b.add_entity(NodeType::Pmt);
        let u = b.add_entity(NodeType::Buyer);
        b.link(t0, p).unwrap();
        b.link(t1, p).unwrap();
        b.link(t0, u).unwrap();
        let g = b.finish().unwrap();
        SubgraphBatch::from_nodes(&g, &[0, 1, 2, 3], &[0, 1])
    }

    #[test]
    fn forward_shape_and_determinism() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let layer = HetConvLayer::new(&mut store, "c0", 4, 8, 2, 0.2, true, &mut rng);
        let batch = toy_batch();
        let run = |rng: &mut StdRng| {
            let mut sess = Session::new();
            let h = sess.constant(batch.features.clone());
            let out = layer.forward(&mut sess, &store, h, &batch, None, false, rng);
            sess.tape.value(out).clone()
        };
        let a = run(&mut rng);
        let b = run(&mut rng);
        assert_eq!(a.shape(), (4, 8));
        assert!(a.max_abs_diff(&b) < 1e-7);
    }

    #[test]
    fn head_indicator_partitions_dimensions() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let layer = HetConvLayer::new(&mut store, "c0", 4, 8, 4, 0.0, false, &mut rng);
        let ind = layer.head_indicator();
        // Every row has exactly one 1 (each dim belongs to one head).
        for r in 0..8 {
            let s: f32 = ind.row(r).iter().sum();
            assert_eq!(s, 1.0);
        }
    }

    #[test]
    fn zero_edge_mask_blocks_all_messages() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let layer = HetConvLayer::new(&mut store, "c0", 4, 8, 2, 0.0, true, &mut rng);
        let batch = toy_batch();
        let mut sess = Session::new();
        let h = sess.constant(batch.features.clone());
        let mask = sess.constant(Tensor::zeros(batch.n_edges(), 1));
        let out = layer.forward(&mut sess, &store, h, &batch, Some(mask), false, &mut rng);
        // With all messages dead the aggregation is zero; output = relu(residual-free proj of 0) = 0.
        assert!(sess.tape.value(out).norm_sq() < 1e-10);
    }

    #[test]
    fn gradients_flow_to_all_layer_params() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let layer = HetConvLayer::new(&mut store, "c0", 4, 8, 2, 0.0, true, &mut rng);
        let batch = toy_batch();
        let mut sess = Session::new();
        let h = sess.constant(batch.features.clone());
        let out = layer.forward(&mut sess, &store, h, &batch, None, true, &mut rng);
        let sq = sess.tape.mul(out, out);
        let loss = sess.tape.sum_all(sq);
        let grads = sess.backward(loss);
        // k/q/v/a linears + two attention tables + edge emb = 7 params.
        assert_eq!(
            grads.len(),
            7,
            "params missing gradients: got {}",
            grads.len()
        );
    }
}
