use xfraud_hetgraph::{EdgeType, GraphView, GraphViewExt, NodeId, NodeType};
use xfraud_tensor::Tensor;

/// The unit of computation all models consume: a sampled subgraph with local
/// ids, dense features (zero rows for entity nodes — "the initial node
/// features are empty", §3.2.1), edge lists and the prediction targets.
#[derive(Debug, Clone)]
pub struct SubgraphBatch {
    /// Node type per local id.
    pub node_types: Vec<NodeType>,
    /// `[n_local, F]` input features; entity rows are zero.
    pub features: Tensor,
    /// Directed edges in local ids.
    pub edge_src: Vec<usize>,
    pub edge_dst: Vec<usize>,
    pub edge_ty: Vec<EdgeType>,
    /// Local ids of the transactions to score.
    pub targets: Vec<usize>,
    /// Class per target (`1` = fraud). Empty at pure inference time.
    pub labels: Vec<usize>,
    /// For each local id, the node id in the originating graph.
    pub global_ids: Vec<NodeId>,
}

/// Global → local id map of one batch. Small batches over huge graphs
/// (the million-node regime) would pay `O(n_nodes)` per batch for a dense
/// table, so tiny batches switch to a sorted-pair map; dense stays for the
/// common case where the batch covers a meaningful fraction of the graph.
/// Lookup-only (never iterated), so both variants are determinism-safe.
enum LocalIndex {
    Dense(Vec<Option<u32>>),
    Sparse(Vec<(NodeId, u32)>),
}

impl LocalIndex {
    /// Dense costs `n_graph` option-slots; sparse costs `n_batch log
    /// n_batch`. The crossover: go sparse when the batch is under ~1/64th
    /// of the graph (and the graph is big enough for the table to matter).
    fn build(n_graph: usize, nodes: &[NodeId]) -> LocalIndex {
        if n_graph <= 1 << 16 || nodes.len() >= n_graph / 64 {
            let mut local: Vec<Option<u32>> = vec![None; n_graph];
            for (i, &v) in nodes.iter().enumerate() {
                debug_assert!(local[v].is_none(), "duplicate node in batch");
                local[v] = Some(i as u32);
            }
            LocalIndex::Dense(local)
        } else {
            let mut pairs: Vec<(NodeId, u32)> = nodes
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, i as u32))
                .collect();
            pairs.sort_unstable();
            debug_assert!(
                pairs.windows(2).all(|w| w[0].0 != w[1].0),
                "duplicate node in batch"
            );
            LocalIndex::Sparse(pairs)
        }
    }

    fn get(&self, v: NodeId) -> Option<usize> {
        match self {
            LocalIndex::Dense(t) => t[v].map(|i| i as usize),
            LocalIndex::Sparse(pairs) => pairs
                .binary_search_by_key(&v, |&(g, _)| g)
                .ok()
                .map(|idx| pairs[idx].1 as usize),
        }
    }
}

impl SubgraphBatch {
    pub fn n_nodes(&self) -> usize {
        self.node_types.len()
    }

    pub fn n_edges(&self) -> usize {
        self.edge_src.len()
    }

    /// Builds a batch over an explicit local node set (seed targets first is
    /// not required; `targets` lists seeds by *global* id).
    ///
    /// `nodes` must be duplicate-free. Edges are the induced directed edges.
    pub fn from_nodes(g: &dyn GraphView, nodes: &[NodeId], targets: &[NodeId]) -> SubgraphBatch {
        let local = LocalIndex::build(g.n_nodes(), nodes);
        let node_types: Vec<NodeType> = nodes.iter().map(|&v| g.node_type(v)).collect();

        let mut features = Tensor::zeros(nodes.len(), g.feature_dim());
        for (i, &v) in nodes.iter().enumerate() {
            g.copy_features_into(v, features.row_mut(i));
        }

        let mut edge_src = Vec::new();
        let mut edge_dst = Vec::new();
        let mut edge_ty = Vec::new();
        for (i, &v) in nodes.iter().enumerate() {
            for edge in g.edges_of(v) {
                if let Some(j) = local.get(edge.dst) {
                    edge_src.push(i);
                    edge_dst.push(j);
                    edge_ty.push(edge.ty);
                }
            }
        }

        let mut tgt_local = Vec::with_capacity(targets.len());
        let mut labels = Vec::with_capacity(targets.len());
        for &t in targets {
            // A sampler that omits its own target is a bug; debug builds
            // assert, release builds drop the row instead of panicking.
            let Some(l) = local.get(t) else {
                debug_assert!(false, "target {t} missing from the sampled node set");
                continue;
            };
            tgt_local.push(l);
            labels.push(usize::from(g.label(t) == Some(true)));
        }

        SubgraphBatch {
            node_types,
            features,
            edge_src,
            edge_dst,
            edge_ty,
            targets: tgt_local,
            labels,
            global_ids: nodes.to_vec(),
        }
    }

    /// Structural sanity check used by tests and samplers.
    pub fn validate(&self) -> bool {
        let n = self.n_nodes();
        if self.features.rows() != n || self.global_ids.len() != n {
            return false;
        }
        if self.edge_src.len() != self.edge_dst.len() || self.edge_src.len() != self.edge_ty.len() {
            return false;
        }
        if self.edge_src.iter().any(|&v| v >= n) || self.edge_dst.iter().any(|&v| v >= n) {
            return false;
        }
        self.targets
            .iter()
            .all(|&t| t < n && self.node_types[t] == NodeType::Txn)
            && self.labels.len() == self.targets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xfraud_hetgraph::{GraphBuilder, HetGraph};

    fn toy() -> HetGraph {
        let mut b = GraphBuilder::new(2);
        let t0 = b.add_txn([1.0, 2.0], Some(true));
        let t1 = b.add_txn([3.0, 4.0], Some(false));
        let p = b.add_entity(NodeType::Pmt);
        b.link(t0, p).unwrap();
        b.link(t1, p).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn from_nodes_builds_consistent_local_view() {
        let g = toy();
        let batch = SubgraphBatch::from_nodes(&g, &[0, 2, 1], &[0, 1]);
        assert!(batch.validate());
        assert_eq!(batch.n_nodes(), 3);
        assert_eq!(batch.n_edges(), 4);
        assert_eq!(batch.features.row(0), &[1.0, 2.0]);
        assert_eq!(batch.features.row(1), &[0.0, 0.0], "entity rows are zero");
        assert_eq!(batch.targets, vec![0, 2]);
        assert_eq!(batch.labels, vec![1, 0]);
    }

    #[test]
    fn edges_outside_the_node_set_are_dropped() {
        let g = toy();
        let batch = SubgraphBatch::from_nodes(&g, &[0, 1], &[0]);
        assert!(batch.validate());
        assert_eq!(
            batch.n_edges(),
            0,
            "both links go through the excluded pmt node"
        );
    }

    #[test]
    #[should_panic(expected = "missing from the sampled node set")]
    fn target_outside_node_set_asserts_in_debug_builds() {
        let g = toy();
        let _ = SubgraphBatch::from_nodes(&g, &[0, 2], &[1]);
    }
}
