//! Incremental (online) training — the paper's production scenario
//! (Appendix H.5): "use the data from the T-1 week (or month) to flag the
//! transactions produced in the T week", with periodic fine-tuning so the
//! model tracks drifting fraud behaviour, while long-cultivated attacks
//! argue for keeping historical data in the mix.
//!
//! [`incremental_study`] splits the labelled transactions into
//! equal-duration time windows and compares, on every later window,
//!
//! * a **static** detector trained once on the first window(s), vs
//! * an **incremental** detector that fine-tunes on each window after
//!   being evaluated on it (evaluate-then-train, so no leakage).

use rand::rngs::StdRng;
use rand::SeedableRng;

use xfraud_hetgraph::{HetGraph, NodeId};
use xfraud_metrics::roc_auc;
use xfraud_nn::AdamW;

use crate::model::Model;
use crate::sampler::Sampler;
use crate::train::{TrainConfig, Trainer};

/// Settings for the incremental study.
#[derive(Debug, Clone)]
pub struct IncrementalConfig {
    /// Number of equal-duration windows the timeline is cut into.
    pub n_windows: usize,
    /// Epochs for the initial fit on window 0.
    pub initial_epochs: usize,
    /// Fine-tuning epochs per subsequent window.
    pub finetune_epochs: usize,
    pub train: TrainConfig,
}

impl Default for IncrementalConfig {
    fn default() -> Self {
        IncrementalConfig {
            n_windows: 5,
            initial_epochs: 6,
            finetune_epochs: 2,
            train: TrainConfig::default(),
        }
    }
}

/// Per-window comparison.
#[derive(Debug, Clone, Copy)]
pub struct WindowReport {
    pub window: usize,
    pub n_eval: usize,
    pub fraud_share: f64,
    pub auc_static: f64,
    pub auc_incremental: f64,
    /// AUC of the averaged scores of both arms — the paper's "combine
    /// their predictions in production" suggestion (historical model +
    /// up-to-date model).
    pub auc_ensemble: f64,
}

/// Labelled transactions bucketed into `n_windows` by event time.
pub fn time_windows(g: &HetGraph, node_time: &[f32], n_windows: usize) -> Vec<Vec<NodeId>> {
    assert!(n_windows > 0);
    let mut windows = vec![Vec::new(); n_windows];
    for (v, _) in g.labeled_txns() {
        let t = node_time[v].clamp(0.0, 0.999_999);
        let w = ((t as f64) * n_windows as f64) as usize;
        windows[w.min(n_windows - 1)].push(v);
    }
    windows
}

/// Runs the static-vs-incremental comparison. `make_model` must construct
/// identically-seeded models so the two arms share their initialisation.
pub fn incremental_study<M: Model + Sync, S: Sampler + Sync>(
    g: &HetGraph,
    node_time: &[f32],
    sampler: &S,
    make_model: impl Fn() -> M,
    cfg: &IncrementalConfig,
) -> Vec<WindowReport> {
    let windows = time_windows(g, node_time, cfg.n_windows);
    let trainer = Trainer::new(cfg.train.clone());

    // Static arm: fit once on window 0.
    let mut static_model = make_model();
    let initial = Trainer::new(TrainConfig {
        epochs: cfg.initial_epochs,
        ..cfg.train.clone()
    });
    initial.fit(&mut static_model, g, sampler, &windows[0], &windows[0]);

    // Incremental arm starts as a copy of the fitted static model.
    let mut incremental_model = make_model();
    incremental_model
        .store_mut()
        .copy_values_from(static_model.store());
    let mut opt = AdamW::new(cfg.train.lr);

    let mut reports = Vec::new();
    let mut rng = StdRng::seed_from_u64(cfg.train.seed ^ 0x1ac);
    for (w, window) in windows.iter().enumerate().skip(1) {
        if window.is_empty() {
            continue;
        }
        // Evaluate both arms on the incoming window *before* training on
        // it — with the same evaluation seed, so both see the same sampled
        // neighbourhoods and equal weights imply equal scores.
        let eval_seed = cfg.train.seed ^ ((w as u64) << 8);
        let (s_scores, labels) = trainer.evaluate(&static_model, g, sampler, window, eval_seed);
        let (i_scores, _) = trainer.evaluate(&incremental_model, g, sampler, window, eval_seed);
        let fraud = labels.iter().filter(|&&y| y).count();
        let ensemble: Vec<f32> = s_scores
            .iter()
            .zip(&i_scores)
            .map(|(a, b)| (a + b) / 2.0)
            .collect();
        reports.push(WindowReport {
            window: w,
            n_eval: window.len(),
            fraud_share: fraud as f64 / window.len() as f64,
            auc_static: roc_auc(&s_scores, &labels),
            auc_incremental: roc_auc(&i_scores, &labels),
            auc_ensemble: roc_auc(&ensemble, &labels),
        });
        // Fine-tune the incremental arm on the window just observed.
        for _ in 0..cfg.finetune_epochs {
            let mut nodes = window.clone();
            use rand::seq::SliceRandom;
            nodes.shuffle(&mut rng);
            for chunk in nodes.chunks(cfg.train.batch_size) {
                let batch = sampler.sample(g, chunk, &mut rng);
                // Fine-tune for the side effect on the weights; the
                // per-chunk loss is not reported.
                let _loss =
                    crate::model::train_step(&mut incremental_model, &batch, &mut opt, &mut rng);
            }
        }
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::{DetectorConfig, XFraudDetector};
    use crate::sampler::SageSampler;
    use xfraud_datagen::{Dataset, DatasetPreset};

    #[test]
    fn windows_partition_labeled_txns() {
        let ds = Dataset::generate(DatasetPreset::EbaySmallSim, 7);
        let windows = time_windows(&ds.graph, &ds.node_time, 5);
        let total: usize = windows.iter().map(Vec::len).sum();
        assert_eq!(total, ds.graph.labeled_txns().len());
        assert!(
            windows.iter().all(|w| !w.is_empty()),
            "a time window is empty"
        );
        // Times are actually increasing across windows.
        let mean_t =
            |w: &[usize]| w.iter().map(|&v| ds.node_time[v] as f64).sum::<f64>() / w.len() as f64;
        assert!(mean_t(&windows[4]) > mean_t(&windows[0]));
    }

    #[test]
    fn incremental_arm_tracks_or_beats_the_static_arm() {
        let ds = Dataset::generate(DatasetPreset::EbaySmallSim, 7);
        let fd = ds.graph.feature_dim();
        let sampler = SageSampler::new(2, 8);
        let cfg = IncrementalConfig {
            n_windows: 4,
            initial_epochs: 4,
            finetune_epochs: 2,
            ..Default::default()
        };
        let reports = incremental_study(
            &ds.graph,
            &ds.node_time,
            &sampler,
            || XFraudDetector::new(DetectorConfig::small(fd, 11)),
            &cfg,
        );
        assert!(!reports.is_empty());
        // First evaluated window: the arms are identical (no fine-tune yet).
        let first = reports[0];
        assert!((first.auc_static - first.auc_incremental).abs() < 1e-9);
        // Across later windows the incremental arm must not fall behind.
        let s: f64 = reports[1..].iter().map(|r| r.auc_static).sum();
        let i: f64 = reports[1..].iter().map(|r| r.auc_incremental).sum();
        assert!(
            i >= s - 0.05,
            "incremental {i:.3} vs static {s:.3} (summed)"
        );
    }
}
