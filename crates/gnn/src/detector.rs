use std::rc::Rc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use xfraud_hetgraph::ALL_NODE_TYPES;
use xfraud_nn::{Embedding, Ffn, Layer, Linear, ParamStore, Session};
use xfraud_tensor::Var;

use crate::batch::SubgraphBatch;
use crate::hetconv::HetConvLayer;
use crate::model::{Masks, Model};

/// Hyper-parameters of the detector. The paper trains with
/// `n_hid=400, n_heads=8, n_layers=6, dropout=0.2` (Appendix C); the default
/// here is a proportionally smaller configuration suited to the simulated
/// datasets — pass your own for the full-size model.
#[derive(Debug, Clone)]
pub struct DetectorConfig {
    pub feature_dim: usize,
    pub hidden: usize,
    pub heads: usize,
    pub layers: usize,
    pub dropout: f32,
    /// HGT-style per-node-type K/Q/V projections instead of the paper's
    /// shared ones — kept for the §3.2.1 ablation ("we see a better
    /// performance ... when shared weights among different types of nodes
    /// are used").
    pub per_type_projections: bool,
    pub seed: u64,
}

impl DetectorConfig {
    pub fn small(feature_dim: usize, seed: u64) -> Self {
        DetectorConfig {
            feature_dim,
            hidden: 64,
            heads: 4,
            layers: 2,
            dropout: 0.2,
            per_type_projections: false,
            seed,
        }
    }

    /// The paper's Appendix-C configuration.
    pub fn paper(feature_dim: usize, seed: u64) -> Self {
        DetectorConfig {
            feature_dim,
            hidden: 400,
            heads: 8,
            layers: 6,
            dropout: 0.2,
            per_type_projections: false,
            seed,
        }
    }
}

/// The xFraud detector (§3.2.1, Fig. 4 left).
///
/// Architecture, following the paper step by step:
///
/// 1. input = transaction features (zero for entities) + **node-type
///    embeddings** (zero-initialised, eq. 2/4/6), linearly projected to the
///    hidden width;
/// 2. `L` heterogeneous convolution layers ([`HetConvLayer`]) with
///    per-target softmax attention, attention dropout and ReLU between
///    layers; edge-type embeddings enter at layer 1 only;
/// 3. a `tanh` over the final GNN representation of each target transaction,
///    **concatenated with its original features**, into a feed-forward head
///    with two hidden layers (dropout → layer norm → ReLU) emitting class
///    logits; the loss is softmax cross-entropy (eq. 11).
///
/// Whether this instance behaves as *detector* (HGT) or *detector+* depends
/// only on which [`crate::Sampler`] feeds it (§3.2.3).
#[derive(Clone)]
pub struct XFraudDetector {
    pub cfg: DetectorConfig,
    store: ParamStore,
    type_emb: Embedding,
    input_proj: Linear,
    convs: Vec<HetConvLayer>,
    head: Ffn,
}

impl XFraudDetector {
    pub fn new(cfg: DetectorConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        // "(1) the node type embeddings ... with zero weights" (§3.2.2).
        let type_emb = Embedding::zeros(
            &mut store,
            "type_emb",
            ALL_NODE_TYPES.len(),
            cfg.feature_dim,
        );
        let input_proj = Linear::new(
            &mut store,
            "input_proj",
            cfg.feature_dim,
            cfg.hidden,
            true,
            &mut rng,
        );
        let convs = (0..cfg.layers)
            .map(|l| {
                HetConvLayer::with_projections(
                    &mut store,
                    &format!("conv{l}"),
                    cfg.hidden,
                    cfg.hidden,
                    cfg.heads,
                    cfg.dropout,
                    l == 0,
                    cfg.per_type_projections,
                    &mut rng,
                )
            })
            .collect();
        let head = Ffn::new(
            &mut store,
            "head",
            cfg.hidden + cfg.feature_dim,
            cfg.hidden,
            2, // "two hidden layers" (§3.2.1 step 3)
            2,
            cfg.dropout,
            &mut rng,
        );
        XFraudDetector {
            cfg,
            store,
            type_emb,
            input_proj,
            convs,
            head,
        }
    }
}

impl Model for XFraudDetector {
    fn forward(
        &self,
        sess: &mut Session,
        batch: &SubgraphBatch,
        train: bool,
        rng: &mut StdRng,
        masks: &Masks,
    ) -> Var {
        let mut x = sess.constant(batch.features.clone());
        if let Some(fmask) = masks.feature_mask {
            x = sess.tape.mul(x, fmask);
        }
        // eq. 2: X + τ(v)^emb.
        let type_ids: Vec<usize> = batch.node_types.iter().map(|t| t.index()).collect();
        let temb = self.type_emb.forward_ids(sess, &self.store, &type_ids);
        let x = sess.tape.add(x, temb);

        let mut h = self.input_proj.forward(sess, &self.store, x);
        for conv in &self.convs {
            h = conv.forward(sess, &self.store, h, batch, masks.edge_mask, train, rng);
        }

        // §3.2.1 step 3: tanh(GNN repr) ++ original features → FFN head.
        let tgt = Rc::new(batch.targets.clone());
        let h_t = sess.tape.gather_rows(h, Rc::clone(&tgt));
        let h_t = sess.tape.tanh(h_t);
        let x_t = sess.tape.gather_rows(x, tgt);
        let cat = sess.tape.concat_cols(&[h_t, x_t]);
        self.head.forward(sess, &self.store, cat, train, rng)
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn name(&self) -> &'static str {
        "xfraud-detector"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{predict_scores, train_step};
    use crate::sampler::{FullGraphSampler, Sampler};
    use xfraud_hetgraph::{GraphBuilder, NodeType};
    use xfraud_nn::AdamW;

    fn toy_batch() -> SubgraphBatch {
        let mut b = GraphBuilder::new(4);
        // Frauds share a payment token with strong feature signal.
        let f0 = b.add_txn([2.0, -2.0, 0.1, 0.0], Some(true));
        let f1 = b.add_txn([1.8, -1.6, 0.0, 0.2], Some(true));
        let b0 = b.add_txn([-2.0, 2.0, 0.1, 0.0], Some(false));
        let b1 = b.add_txn([-1.7, 1.9, 0.2, 0.1], Some(false));
        let bad_pmt = b.add_entity(NodeType::Pmt);
        let good_addr = b.add_entity(NodeType::Addr);
        b.link(f0, bad_pmt).unwrap();
        b.link(f1, bad_pmt).unwrap();
        b.link(b0, good_addr).unwrap();
        b.link(b1, good_addr).unwrap();
        let g = b.finish().unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        FullGraphSampler.sample(&g, &[0, 1, 2, 3], &mut rng)
    }

    #[test]
    fn detector_output_shape() {
        let det = XFraudDetector::new(DetectorConfig::small(4, 1));
        let batch = toy_batch();
        let mut rng = StdRng::seed_from_u64(1);
        let scores = predict_scores(&det, &batch, &mut rng);
        assert_eq!(scores.len(), 4);
        assert!(scores.iter().all(|s| (0.0..=1.0).contains(s)));
    }

    #[test]
    fn detector_overfits_a_separable_toy() {
        let mut det = XFraudDetector::new(DetectorConfig::small(4, 2));
        let batch = toy_batch();
        let mut opt = AdamW::new(5e-3);
        let mut rng = StdRng::seed_from_u64(2);
        let first_loss = train_step(&mut det, &batch, &mut opt, &mut rng);
        let mut last = first_loss;
        for _ in 0..80 {
            last = train_step(&mut det, &batch, &mut opt, &mut rng);
        }
        assert!(
            last < first_loss * 0.5,
            "loss should at least halve: {first_loss} → {last}"
        );
        let scores = predict_scores(&det, &batch, &mut rng);
        assert!(
            scores[0] > scores[2],
            "fraud must outscore benign: {scores:?}"
        );
        assert!(scores[1] > scores[3]);
    }

    #[test]
    fn per_type_projection_variant_trains_and_costs_more_params() {
        let shared = XFraudDetector::new(DetectorConfig::small(4, 2));
        let mut per_type = XFraudDetector::new(DetectorConfig {
            per_type_projections: true,
            ..DetectorConfig::small(4, 2)
        });
        assert!(
            per_type.store().n_scalars() > shared.store().n_scalars(),
            "per-type K/Q/V must add parameters"
        );
        let batch = toy_batch();
        let mut opt = AdamW::new(5e-3);
        let mut rng = StdRng::seed_from_u64(2);
        let first = train_step(&mut per_type, &batch, &mut opt, &mut rng);
        let mut last = first;
        for _ in 0..60 {
            last = train_step(&mut per_type, &batch, &mut opt, &mut rng);
        }
        assert!(
            last < first * 0.6,
            "per-type variant failed to train: {first} → {last}"
        );
    }

    #[test]
    fn detector_is_seed_deterministic() {
        let a = XFraudDetector::new(DetectorConfig::small(4, 5));
        let b = XFraudDetector::new(DetectorConfig::small(4, 5));
        assert_eq!(a.store().max_param_diff(b.store()), 0.0);
        let c = XFraudDetector::new(DetectorConfig::small(4, 6));
        assert!(a.store().max_param_diff(c.store()) > 0.0);
    }
}
