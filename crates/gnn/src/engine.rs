//! Deterministic parallel mini-batch engine.
//!
//! Per-batch neighbour sampling + feature assembly dominates wall-clock on
//! sparse transaction graphs (§4.2, Table 6 — the reason the paper trains
//! with DDP at all). This module overlaps that per-batch work with the
//! compute thread: `num_workers` threads claim batch indices from a shared
//! counter, sample their `SubgraphBatch`es, and push them into a bounded
//! channel; the consumer drains the channel and processes batches **in
//! index order**.
//!
//! Determinism is the design constraint every tier-1 test leans on: instead
//! of threading one mutable RNG through the epoch (whose state would depend
//! on which worker sampled what, and in which order), every batch derives a
//! private [`StdRng`] from `(seed, stream, epoch, batch_index)` via
//! [`batch_rng`]. Work distribution across threads then has no effect on
//! any sampled neighbourhood, dropout mask, loss, AUC or score — a
//! 1-worker and an 8-worker run are bit-identical, which
//! `tests/tests/engine_determinism.rs` asserts.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use rand::rngs::StdRng;
use rand::SeedableRng;

use xfraud_hetgraph::{GraphView, NodeId};

use crate::batch::SubgraphBatch;
use crate::model::{predict_scores, Model};
use crate::sampler::Sampler;

/// RNG stream tags: every distinct use of randomness in the training loop
/// draws from its own derived stream so no stage can perturb another.
pub mod streams {
    /// Epoch-level shuffling of the training nodes.
    pub const SHUFFLE: u64 = 0x5348;
    /// Subgraph sampling of one training batch.
    pub const SAMPLE: u64 = 0x5350;
    /// Forward/backward (dropout) of one training batch.
    pub const STEP: u64 = 0x5354;
    /// Sampling + forward of one inference batch.
    pub const EVAL: u64 = 0x4556;
    /// Online serving: the ego-subgraph of one scored transaction. The
    /// per-node RNG is derived from `(seed, SERVE, graph_version, node)`,
    /// so a cached subgraph and a freshly sampled one are interchangeable.
    pub const SERVE: u64 = 0x5356;
}

/// Number of workers to use when the caller does not say: the machine's
/// available parallelism.
pub fn default_num_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[inline]
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Folds a salt into a base seed, yielding a fresh decorrelated seed — used
/// to give e.g. each validation epoch its own evaluation seed.
pub fn mix_seed(seed: u64, salt: u64) -> u64 {
    splitmix(splitmix(seed) ^ salt)
}

/// Derives the private RNG of one unit of work from its coordinates. The
/// SplitMix64 fold decorrelates nearby `(epoch, index)` pairs; equal
/// coordinates always yield the identical stream, independent of thread
/// scheduling.
pub fn batch_rng(seed: u64, stream: u64, epoch: u64, index: u64) -> StdRng {
    let mut h = splitmix(seed);
    h = splitmix(h ^ stream);
    h = splitmix(h ^ epoch);
    h = splitmix(h ^ index);
    StdRng::seed_from_u64(h)
}

/// The work-queue batch engine. Cheap to construct; holds no threads —
/// each call spins up a scoped crew and joins it before returning.
#[derive(Debug, Clone)]
pub struct BatchEngine {
    /// Sampling threads. `0` and `1` both mean "sample inline on the
    /// consumer thread" (no threads spawned).
    pub num_workers: usize,
}

impl BatchEngine {
    pub fn new(num_workers: usize) -> Self {
        BatchEngine { num_workers }
    }

    /// Channel capacity: enough buffered batches that workers rarely block
    /// on the consumer, small enough to bound memory.
    fn queue_depth(&self) -> usize {
        2 * self.num_workers.max(1)
    }

    /// Samples `chunks[i]` with `make_rng(i)` and hands every batch to
    /// `consume` strictly in ascending index order. With more than one
    /// worker the sampling happens on background threads, overlapped with
    /// whatever `consume` does; results are re-ordered through a bounded
    /// channel plus a small reorder buffer, so `consume` observes exactly
    /// the sequential schedule.
    pub fn sample_ordered<S, F, C>(
        &self,
        g: &(dyn GraphView + Sync),
        sampler: &S,
        chunks: &[&[NodeId]],
        make_rng: F,
        mut consume: C,
    ) where
        S: Sampler + Sync,
        F: Fn(usize) -> StdRng + Sync,
        C: FnMut(usize, SubgraphBatch),
    {
        if self.num_workers <= 1 || chunks.len() <= 1 {
            for (i, chunk) in chunks.iter().enumerate() {
                let mut rng = make_rng(i);
                consume(i, sampler.sample(g, chunk, &mut rng));
            }
            return;
        }

        let next = AtomicUsize::new(0);
        let (tx, rx) = crossbeam::channel::bounded::<(usize, SubgraphBatch)>(self.queue_depth());
        std::thread::scope(|scope| {
            for _ in 0..self.num_workers {
                let tx = tx.clone();
                let next = &next;
                let make_rng = &make_rng;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= chunks.len() {
                        break;
                    }
                    let mut rng = make_rng(i);
                    let batch = sampler.sample(g, chunks[i], &mut rng);
                    // The consumer only hangs up by panicking; just stop.
                    if tx.send((i, batch)).is_err() {
                        break;
                    }
                });
            }
            drop(tx); // the clones above keep the channel open

            let mut pending: BTreeMap<usize, SubgraphBatch> = BTreeMap::new();
            let mut want = 0usize;
            for (i, batch) in rx.iter() {
                pending.insert(i, batch);
                while let Some(b) = pending.remove(&want) {
                    consume(want, b);
                    want += 1;
                }
            }
            debug_assert!(pending.is_empty(), "reorder buffer drained");
        });
    }

    /// Fully-parallel batched inference: workers sample **and** run the
    /// forward pass (the model is immutable during inference), and the
    /// per-target fraud scores come back concatenated in chunk order —
    /// bit-identical to a sequential run because each batch's RNG is
    /// derived from its index alone.
    pub fn score_ordered<M, S>(
        &self,
        model: &M,
        g: &(dyn GraphView + Sync),
        sampler: &S,
        chunks: &[&[NodeId]],
        make_rng: impl Fn(usize) -> StdRng + Sync,
    ) -> Vec<f32>
    where
        M: Model + Sync,
        S: Sampler + Sync,
    {
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        let mut scores = Vec::with_capacity(total);
        if self.num_workers <= 1 || chunks.len() <= 1 {
            for (i, chunk) in chunks.iter().enumerate() {
                let mut rng = make_rng(i);
                let batch = sampler.sample(g, chunk, &mut rng);
                scores.extend(predict_scores(model, &batch, &mut rng));
            }
            return scores;
        }

        let next = AtomicUsize::new(0);
        let (tx, rx) = crossbeam::channel::bounded::<(usize, Vec<f32>)>(self.queue_depth());
        std::thread::scope(|scope| {
            for _ in 0..self.num_workers {
                let tx = tx.clone();
                let next = &next;
                let make_rng = &make_rng;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= chunks.len() {
                        break;
                    }
                    let mut rng = make_rng(i);
                    let batch = sampler.sample(g, chunks[i], &mut rng);
                    let s = predict_scores(model, &batch, &mut rng);
                    if tx.send((i, s)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);

            let mut pending: BTreeMap<usize, Vec<f32>> = BTreeMap::new();
            let mut want = 0usize;
            for (i, s) in rx.iter() {
                pending.insert(i, s);
                while let Some(s) = pending.remove(&want) {
                    scores.extend(s);
                    want += 1;
                }
            }
            debug_assert!(pending.is_empty(), "reorder buffer drained");
        });
        scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::{DetectorConfig, XFraudDetector};
    use crate::sampler::SageSampler;
    use xfraud_datagen::{Dataset, DatasetPreset};
    use xfraud_hetgraph::HetGraph;

    fn setup() -> (HetGraph, Vec<NodeId>) {
        let g = Dataset::generate(DatasetPreset::EbaySmallSim, 11).graph;
        let seeds: Vec<NodeId> = g
            .labeled_txns()
            .into_iter()
            .map(|(v, _)| v)
            .take(96)
            .collect();
        (g, seeds)
    }

    #[test]
    fn batch_rng_streams_are_reproducible_and_distinct() {
        use rand::Rng;
        let a: u64 = batch_rng(7, streams::SAMPLE, 3, 5).gen();
        let b: u64 = batch_rng(7, streams::SAMPLE, 3, 5).gen();
        assert_eq!(a, b);
        let c: u64 = batch_rng(7, streams::SAMPLE, 3, 6).gen();
        let d: u64 = batch_rng(7, streams::STEP, 3, 5).gen();
        let e: u64 = batch_rng(8, streams::SAMPLE, 3, 5).gen();
        assert!(a != c && a != d && a != e);
    }

    #[test]
    fn sample_ordered_matches_sequential_run_for_any_worker_count() {
        let (g, seeds) = setup();
        let sampler = SageSampler::new(2, 6);
        let chunks: Vec<&[NodeId]> = seeds.chunks(16).collect();
        let make_rng = |i: usize| batch_rng(3, streams::SAMPLE, 0, i as u64);

        let collect = |workers: usize| {
            let mut order = Vec::new();
            let mut ids = Vec::new();
            BatchEngine::new(workers).sample_ordered(&g, &sampler, &chunks, make_rng, |i, b| {
                order.push(i);
                ids.push(b.global_ids);
            });
            (order, ids)
        };

        let (order1, ids1) = collect(1);
        assert_eq!(order1, (0..chunks.len()).collect::<Vec<_>>());
        for workers in [2, 4, 8] {
            let (order, ids) = collect(workers);
            assert_eq!(order, order1, "{workers} workers");
            assert_eq!(ids, ids1, "{workers} workers");
        }
    }

    #[test]
    fn score_ordered_is_bit_identical_across_worker_counts() {
        let (g, seeds) = setup();
        let sampler = SageSampler::new(2, 6);
        let model = XFraudDetector::new(DetectorConfig::small(g.feature_dim(), 2));
        let chunks: Vec<&[NodeId]> = seeds.chunks(20).collect();
        let make_rng = |i: usize| batch_rng(9, streams::EVAL, 0, i as u64);

        let s1 = BatchEngine::new(1).score_ordered(&model, &g, &sampler, &chunks, make_rng);
        assert_eq!(s1.len(), seeds.len());
        for workers in [2, 4] {
            let s =
                BatchEngine::new(workers).score_ordered(&model, &g, &sampler, &chunks, make_rng);
            assert_eq!(s, s1, "{workers} workers");
        }
    }

    #[test]
    fn empty_chunk_list_is_a_no_op() {
        let (g, _) = setup();
        let sampler = SageSampler::new(2, 6);
        let chunks: Vec<&[NodeId]> = Vec::new();
        let mut calls = 0;
        BatchEngine::new(4).sample_ordered(
            &g,
            &sampler,
            &chunks,
            |i| batch_rng(0, streams::SAMPLE, 0, i as u64),
            |_, _| calls += 1,
        );
        assert_eq!(calls, 0);
    }
}
