use std::time::Instant;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use xfraud_hetgraph::{HetGraph, NodeId};
use xfraud_metrics::roc_auc;
use xfraud_nn::AdamW;

use crate::model::{predict_scores, train_step, Model};
use crate::sampler::Sampler;

/// Training-loop settings. Paper values (Appendix C): `max_epochs = 128`,
/// `patience = 32`, AdamW, `clip = 0.25`; inference batches of 640 targets.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    pub epochs: usize,
    pub patience: usize,
    /// Target transactions per optimisation step.
    pub batch_size: usize,
    /// Target transactions per inference batch (the paper times batches of 640).
    pub eval_batch_size: usize,
    pub lr: f32,
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 30,
            patience: 32,
            batch_size: 256,
            eval_batch_size: 640,
            lr: 2e-3,
            seed: 0,
        }
    }
}

/// Per-epoch record for convergence plots (Fig. 14).
#[derive(Debug, Clone, Copy)]
pub struct EpochStats {
    pub epoch: usize,
    pub mean_loss: f32,
    pub val_auc: f64,
    pub secs: f64,
}

/// Splits the labelled transactions into train/test node lists.
pub fn train_test_split(
    g: &HetGraph,
    test_fraction: f64,
    seed: u64,
) -> (Vec<NodeId>, Vec<NodeId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut labeled: Vec<NodeId> = g.labeled_txns().into_iter().map(|(v, _)| v).collect();
    labeled.shuffle(&mut rng);
    let n_test = ((labeled.len() as f64) * test_fraction).round() as usize;
    let test = labeled.split_off(labeled.len() - n_test.min(labeled.len()));
    (labeled, test)
}

/// Mini-batch trainer shared by every model/sampler combination.
pub struct Trainer {
    pub cfg: TrainConfig,
}

impl Trainer {
    pub fn new(cfg: TrainConfig) -> Self {
        Trainer { cfg }
    }

    /// Trains `model` on `train_nodes`, evaluating AUC on `val_nodes` after
    /// every epoch; stops early after `patience` epochs without improvement.
    pub fn fit<M: Model, S: Sampler>(
        &self,
        model: &mut M,
        g: &HetGraph,
        sampler: &S,
        train_nodes: &[NodeId],
        val_nodes: &[NodeId],
    ) -> Vec<EpochStats> {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let mut opt = AdamW::new(self.cfg.lr);
        let mut stats = Vec::with_capacity(self.cfg.epochs);
        let mut nodes = train_nodes.to_vec();
        let mut best_auc = f64::NEG_INFINITY;
        let mut since_best = 0usize;
        for epoch in 0..self.cfg.epochs {
            let start = Instant::now();
            nodes.shuffle(&mut rng);
            let mut losses = Vec::new();
            for chunk in nodes.chunks(self.cfg.batch_size) {
                let batch = sampler.sample(g, chunk, &mut rng);
                losses.push(train_step(model, &batch, &mut opt, &mut rng));
            }
            let mean_loss = losses.iter().sum::<f32>() / losses.len().max(1) as f32;
            let (scores, labels) = self.evaluate(model, g, sampler, val_nodes, &mut rng);
            let val_auc = roc_auc(&scores, &labels);
            stats.push(EpochStats { epoch, mean_loss, val_auc, secs: start.elapsed().as_secs_f64() });
            if val_auc > best_auc {
                best_auc = val_auc;
                since_best = 0;
            } else {
                since_best += 1;
                if since_best >= self.cfg.patience {
                    break;
                }
            }
        }
        stats
    }

    /// Scores `nodes` in inference batches; returns `(scores, labels)`.
    pub fn evaluate<M: Model, S: Sampler>(
        &self,
        model: &M,
        g: &HetGraph,
        sampler: &S,
        nodes: &[NodeId],
        rng: &mut StdRng,
    ) -> (Vec<f32>, Vec<bool>) {
        let mut scores = Vec::with_capacity(nodes.len());
        let mut labels = Vec::with_capacity(nodes.len());
        for chunk in nodes.chunks(self.cfg.eval_batch_size) {
            let batch = sampler.sample(g, chunk, rng);
            scores.extend(predict_scores(model, &batch, rng));
            labels.extend(chunk.iter().map(|&v| g.label(v) == Some(true)));
        }
        (scores, labels)
    }

    /// Times inference per batch (sampling + forward), returning
    /// `(mean_secs, std_secs, total_secs)` — the quantities of Table 3 and
    /// Fig. 10.
    pub fn time_inference<M: Model, S: Sampler>(
        &self,
        model: &M,
        g: &HetGraph,
        sampler: &S,
        nodes: &[NodeId],
        rng: &mut StdRng,
    ) -> (f64, f64, f64) {
        let mut durations = Vec::new();
        for chunk in nodes.chunks(self.cfg.eval_batch_size) {
            let start = Instant::now();
            let batch = sampler.sample(g, chunk, rng);
            let _ = predict_scores(model, &batch, rng);
            durations.push(start.elapsed().as_secs_f64());
        }
        let total: f64 = durations.iter().sum();
        let mean = total / durations.len().max(1) as f64;
        let var = durations.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>()
            / durations.len().max(1) as f64;
        (mean, var.sqrt(), total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::{DetectorConfig, XFraudDetector};
    use crate::sampler::SageSampler;
    use xfraud_datagen::{Dataset, DatasetPreset};

    #[test]
    fn split_partitions_labeled_txns() {
        let g = Dataset::generate(DatasetPreset::EbaySmallSim, 1).graph;
        let (train, test) = train_test_split(&g, 0.3, 42);
        let total = g.labeled_txns().len();
        assert_eq!(train.len() + test.len(), total);
        assert!((test.len() as f64 / total as f64 - 0.3).abs() < 0.02);
        // Disjoint.
        let mut all = train.clone();
        all.extend_from_slice(&test);
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), total);
    }

    #[test]
    fn split_is_seed_deterministic() {
        let g = Dataset::generate(DatasetPreset::EbaySmallSim, 1).graph;
        let a = train_test_split(&g, 0.3, 42);
        let b = train_test_split(&g, 0.3, 42);
        assert_eq!(a, b);
        let c = train_test_split(&g, 0.3, 43);
        assert_ne!(a.0, c.0);
    }

    /// End-to-end: a short training run must lift AUC well above chance.
    #[test]
    fn detector_learns_planted_fraud_signal() {
        let ds = Dataset::generate(DatasetPreset::EbaySmallSim, 5);
        let (train, test) = train_test_split(&ds.graph, 0.3, 0);
        let mut model = XFraudDetector::new(DetectorConfig::small(ds.graph.feature_dim(), 1));
        let sampler = SageSampler::new(2, 8);
        let trainer = Trainer::new(TrainConfig { epochs: 4, ..TrainConfig::default() });
        let stats = trainer.fit(&mut model, &ds.graph, &sampler, &train, &test);
        let final_auc = stats.last().unwrap().val_auc;
        // The simulated task is calibrated to the paper's eBay-small regime
        // (AUC ≈ 0.72 at convergence); 4 epochs must be well above chance.
        assert!(final_auc > 0.62, "AUC after 4 epochs = {final_auc}");
    }
}
