use std::time::Instant;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use xfraud_hetgraph::{GraphView, HetGraph, NodeId};
use xfraud_metrics::roc_auc;
use xfraud_nn::AdamW;

use crate::engine::{batch_rng, default_num_workers, mix_seed, streams, BatchEngine};
use crate::model::{predict_scores, train_step, Model};
use crate::sampler::Sampler;

/// Training-loop settings. Paper values (Appendix C): `max_epochs = 128`,
/// `patience = 32`, AdamW, `clip = 0.25`; inference batches of 640 targets.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    pub epochs: usize,
    pub patience: usize,
    /// Target transactions per optimisation step.
    pub batch_size: usize,
    /// Target transactions per inference batch (the paper times batches of 640).
    pub eval_batch_size: usize,
    pub lr: f32,
    pub seed: u64,
    /// Sampling threads of the [`BatchEngine`]. Every per-batch RNG is
    /// derived from `(seed, stream, epoch, batch)` rather than threaded
    /// through the loop, so losses, AUCs and scores are bit-identical for
    /// *any* value here — this knob only trades wall-clock for cores.
    /// `0`/`1` sample inline on the training thread.
    pub num_workers: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 30,
            patience: 32,
            batch_size: 256,
            eval_batch_size: 640,
            lr: 2e-3,
            seed: 0,
            num_workers: default_num_workers(),
        }
    }
}

/// Per-epoch record for convergence plots (Fig. 14).
#[derive(Debug, Clone, Copy)]
pub struct EpochStats {
    pub epoch: usize,
    pub mean_loss: f32,
    pub val_auc: f64,
    pub secs: f64,
}

/// Splits the labelled transactions into train/test node lists.
pub fn train_test_split(g: &HetGraph, test_fraction: f64, seed: u64) -> (Vec<NodeId>, Vec<NodeId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut labeled: Vec<NodeId> = g.labeled_txns().into_iter().map(|(v, _)| v).collect();
    labeled.shuffle(&mut rng);
    let n_test = ((labeled.len() as f64) * test_fraction).round() as usize;
    let test = labeled.split_off(labeled.len() - n_test.min(labeled.len()));
    (labeled, test)
}

/// Mini-batch trainer shared by every model/sampler combination.
pub struct Trainer {
    pub cfg: TrainConfig,
}

impl Trainer {
    pub fn new(cfg: TrainConfig) -> Self {
        Trainer { cfg }
    }

    /// Trains `model` on `train_nodes`, evaluating AUC on `val_nodes` after
    /// every epoch; stops early after `patience` epochs without improvement.
    ///
    /// Batch sampling runs on the [`BatchEngine`]: `cfg.num_workers` threads
    /// pre-sample upcoming batches while the training thread runs
    /// forward/backward on the current one. Every batch's sampling and
    /// dropout RNGs are derived from `(seed, stream, epoch, batch index)`,
    /// so the result is bit-identical whatever `num_workers` is.
    /// The graph is any [`GraphView`] — an in-RAM [`HetGraph`] or an
    /// `ExternalFeatureGraph` whose feature rows are paged in from disk.
    pub fn fit<M: Model + Sync, S: Sampler + Sync>(
        &self,
        model: &mut M,
        g: &(dyn GraphView + Sync),
        sampler: &S,
        train_nodes: &[NodeId],
        val_nodes: &[NodeId],
    ) -> Vec<EpochStats> {
        let engine = BatchEngine::new(self.cfg.num_workers);
        let mut opt = AdamW::new(self.cfg.lr);
        let mut stats = Vec::with_capacity(self.cfg.epochs);
        let mut nodes = train_nodes.to_vec();
        let mut best_auc = f64::NEG_INFINITY;
        let mut since_best = 0usize;
        for epoch in 0..self.cfg.epochs {
            // xlint: allow(d2, reason = "epoch wall-clock is reported in TrainStats only; scores depend on batch_rng seeds alone")
            let start = Instant::now();
            let e = epoch as u64;
            nodes.shuffle(&mut batch_rng(self.cfg.seed, streams::SHUFFLE, e, 0));
            let chunks: Vec<&[NodeId]> = nodes.chunks(self.cfg.batch_size).collect();
            let mut losses = Vec::with_capacity(chunks.len());
            engine.sample_ordered(
                g,
                sampler,
                &chunks,
                |i| batch_rng(self.cfg.seed, streams::SAMPLE, e, i as u64),
                |i, batch| {
                    let mut step_rng = batch_rng(self.cfg.seed, streams::STEP, e, i as u64);
                    losses.push(train_step(model, &batch, &mut opt, &mut step_rng));
                },
            );
            let mean_loss = losses.iter().sum::<f32>() / losses.len().max(1) as f32;
            let (scores, labels) =
                self.evaluate(model, g, sampler, val_nodes, mix_seed(self.cfg.seed, e));
            let val_auc = roc_auc(&scores, &labels);
            stats.push(EpochStats {
                epoch,
                mean_loss,
                val_auc,
                secs: start.elapsed().as_secs_f64(),
            });
            if val_auc > best_auc {
                best_auc = val_auc;
                since_best = 0;
            } else {
                since_best += 1;
                if since_best >= self.cfg.patience {
                    break;
                }
            }
        }
        stats
    }

    /// Scores `nodes` in inference batches; returns `(scores, labels)`.
    ///
    /// Runs on the [`BatchEngine`]: with `cfg.num_workers > 1`, workers
    /// sample *and* forward whole batches in parallel (the model is
    /// immutable here). `seed` keys the per-batch RNGs, so equal seeds give
    /// bit-identical scores at any worker count.
    pub fn evaluate<M: Model + Sync, S: Sampler + Sync>(
        &self,
        model: &M,
        g: &(dyn GraphView + Sync),
        sampler: &S,
        nodes: &[NodeId],
        seed: u64,
    ) -> (Vec<f32>, Vec<bool>) {
        let engine = BatchEngine::new(self.cfg.num_workers);
        let chunks: Vec<&[NodeId]> = nodes.chunks(self.cfg.eval_batch_size).collect();
        let scores = engine.score_ordered(model, g, sampler, &chunks, |i| {
            batch_rng(seed, streams::EVAL, 0, i as u64)
        });
        let labels = nodes.iter().map(|&v| g.label(v) == Some(true)).collect();
        (scores, labels)
    }

    /// Times inference per batch (sampling + forward), returning
    /// `(mean_secs, std_secs, total_secs)` — the quantities of Table 3 and
    /// Fig. 10. Deliberately sequential: per-batch latency is the measured
    /// quantity, so overlapping batches would corrupt it. The per-batch
    /// RNGs match [`Trainer::evaluate`] with the same `seed`.
    pub fn time_inference<M: Model, S: Sampler>(
        &self,
        model: &M,
        g: &dyn GraphView,
        sampler: &S,
        nodes: &[NodeId],
        seed: u64,
    ) -> (f64, f64, f64) {
        let mut durations = Vec::new();
        for (i, chunk) in nodes.chunks(self.cfg.eval_batch_size).enumerate() {
            // xlint: allow(d2, reason = "latency benchmark readout; the scores themselves come from seeded RNG streams")
            let start = Instant::now();
            let mut rng = batch_rng(seed, streams::EVAL, 0, i as u64);
            let batch = sampler.sample(g, chunk, &mut rng);
            // Latency harness: only the elapsed time is observed.
            let _scores = predict_scores(model, &batch, &mut rng);
            durations.push(start.elapsed().as_secs_f64());
        }
        let total: f64 = durations.iter().sum();
        let mean = total / durations.len().max(1) as f64;
        let var = durations
            .iter()
            .map(|d| (d - mean) * (d - mean))
            .sum::<f64>()
            / durations.len().max(1) as f64;
        (mean, var.sqrt(), total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::{DetectorConfig, XFraudDetector};
    use crate::sampler::SageSampler;
    use xfraud_datagen::{Dataset, DatasetPreset};

    #[test]
    fn split_partitions_labeled_txns() {
        let g = Dataset::generate(DatasetPreset::EbaySmallSim, 1).graph;
        let (train, test) = train_test_split(&g, 0.3, 42);
        let total = g.labeled_txns().len();
        assert_eq!(train.len() + test.len(), total);
        assert!((test.len() as f64 / total as f64 - 0.3).abs() < 0.02);
        // Disjoint.
        let mut all = train.clone();
        all.extend_from_slice(&test);
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), total);
    }

    #[test]
    fn split_is_seed_deterministic() {
        let g = Dataset::generate(DatasetPreset::EbaySmallSim, 1).graph;
        let a = train_test_split(&g, 0.3, 42);
        let b = train_test_split(&g, 0.3, 42);
        assert_eq!(a, b);
        let c = train_test_split(&g, 0.3, 43);
        assert_ne!(a.0, c.0);
    }

    #[test]
    fn split_handles_extreme_fractions() {
        let g = Dataset::generate(DatasetPreset::EbaySmallSim, 1).graph;
        let total = g.labeled_txns().len();
        let (train, test) = train_test_split(&g, 0.0, 42);
        assert_eq!((train.len(), test.len()), (total, 0));
        let (train, test) = train_test_split(&g, 1.0, 42);
        assert_eq!((train.len(), test.len()), (0, total));
    }

    #[test]
    fn split_handles_tiny_label_sets() {
        use xfraud_hetgraph::{GraphBuilder, NodeType};
        // One labelled transaction: every fraction must keep it somewhere.
        let mut b = GraphBuilder::new(1);
        let t = b.add_txn([0.0], Some(true));
        let p = b.add_entity(NodeType::Pmt);
        b.link(t, p).unwrap();
        let g = b.finish().unwrap();
        for frac in [0.0, 0.3, 0.5, 0.7, 1.0] {
            let (train, test) = train_test_split(&g, frac, 9);
            assert_eq!(train.len() + test.len(), 1, "fraction {frac}");
        }
        // No labels at all: both sides empty, no panic.
        let mut b = GraphBuilder::new(1);
        let t = b.add_txn([0.0], None);
        let p = b.add_entity(NodeType::Pmt);
        b.link(t, p).unwrap();
        let g = b.finish().unwrap();
        let (train, test) = train_test_split(&g, 0.5, 9);
        assert!(train.is_empty() && test.is_empty());
    }

    /// The headline engine guarantee at the trainer level: worker count
    /// must not leak into any result — weights, losses or AUCs.
    #[test]
    fn fit_is_bit_identical_across_worker_counts() {
        let ds = Dataset::generate(DatasetPreset::EbaySmallSim, 5);
        let (train, test) = train_test_split(&ds.graph, 0.3, 0);
        let sampler = SageSampler::new(2, 8);
        let run = |workers: usize| {
            let mut model = XFraudDetector::new(DetectorConfig::small(ds.graph.feature_dim(), 1));
            let trainer = Trainer::new(TrainConfig {
                epochs: 2,
                num_workers: workers,
                ..TrainConfig::default()
            });
            let stats = trainer.fit(&mut model, &ds.graph, &sampler, &train, &test);
            (model, stats)
        };
        let (m1, s1) = run(1);
        for workers in [2, 4] {
            let (m, s) = run(workers);
            assert_eq!(
                m1.store().max_param_diff(m.store()),
                0.0,
                "{workers} workers"
            );
            for (a, b) in s1.iter().zip(&s) {
                assert_eq!(a.mean_loss, b.mean_loss, "{workers} workers");
                assert_eq!(a.val_auc, b.val_auc, "{workers} workers");
            }
        }
    }

    /// End-to-end: a short training run must lift AUC well above chance.
    #[test]
    fn detector_learns_planted_fraud_signal() {
        let ds = Dataset::generate(DatasetPreset::EbaySmallSim, 5);
        let (train, test) = train_test_split(&ds.graph, 0.3, 0);
        let mut model = XFraudDetector::new(DetectorConfig::small(ds.graph.feature_dim(), 1));
        let sampler = SageSampler::new(2, 8);
        let trainer = Trainer::new(TrainConfig {
            epochs: 4,
            ..TrainConfig::default()
        });
        let stats = trainer.fit(&mut model, &ds.graph, &sampler, &train, &test);
        let final_auc = stats.last().unwrap().val_auc;
        // The simulated task is calibrated to the paper's eBay-small regime
        // (AUC ≈ 0.72 at convergence); 4 epochs must be well above chance.
        assert!(final_auc > 0.62, "AUC after 4 epochs = {final_auc}");
    }
}
