use std::rc::Rc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use xfraud_nn::{Ffn, Layer, Linear, ParamId, ParamStore, Session};
use xfraud_tensor::{Tensor, Var};

use crate::batch::SubgraphBatch;
use crate::detector::DetectorConfig;
use crate::model::{Masks, Model};

/// The GAT baseline of Table 3: homogeneous multi-head additive attention.
///
/// Identical plumbing to the detector but **type-blind** — one shared
/// attention vector pair per layer instead of per-node-type tables, no type
/// or edge-type embeddings, and the classic GAT LeakyReLU(0.2) on the raw
/// scores. The prediction head is the same FFN so the comparison isolates
/// the convolution.
pub struct GatModel {
    pub cfg: DetectorConfig,
    store: ParamStore,
    input_proj: Linear,
    layers: Vec<GatLayer>,
    head: Ffn,
}

struct GatLayer {
    w: Linear,
    att_src: ParamId,
    att_dst: ParamId,
    heads: usize,
    d_out: usize,
}

impl GatModel {
    pub fn new(cfg: DetectorConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let input_proj = Linear::new(
            &mut store,
            "input_proj",
            cfg.feature_dim,
            cfg.hidden,
            true,
            &mut rng,
        );
        let layers = (0..cfg.layers)
            .map(|l| GatLayer {
                w: Linear::new(
                    &mut store,
                    &format!("gat{l}.w"),
                    cfg.hidden,
                    cfg.hidden,
                    false,
                    &mut rng,
                ),
                att_src: store.register(
                    format!("gat{l}.att_src"),
                    Tensor::rand_uniform(1, cfg.hidden, -0.1, 0.1, &mut rng),
                ),
                att_dst: store.register(
                    format!("gat{l}.att_dst"),
                    Tensor::rand_uniform(1, cfg.hidden, -0.1, 0.1, &mut rng),
                ),
                heads: cfg.heads,
                d_out: cfg.hidden,
            })
            .collect();
        let head = Ffn::new(
            &mut store,
            "head",
            cfg.hidden + cfg.feature_dim,
            cfg.hidden,
            2,
            2,
            cfg.dropout,
            &mut rng,
        );
        GatModel {
            cfg,
            store,
            input_proj,
            layers,
            head,
        }
    }
}

impl GatLayer {
    fn head_indicator(&self) -> Tensor {
        let d_k = self.d_out / self.heads;
        let mut ind = Tensor::zeros(self.d_out, self.heads);
        for i in 0..self.heads {
            for j in 0..d_k {
                ind.set(i * d_k + j, i, 1.0);
            }
        }
        ind
    }

    #[allow(clippy::too_many_arguments)]
    fn forward(
        &self,
        sess: &mut Session,
        store: &ParamStore,
        h: Var,
        batch: &SubgraphBatch,
        edge_mask: Option<Var>,
        dropout: f32,
        train: bool,
        rng: &mut StdRng,
    ) -> Var {
        let n = batch.n_nodes();
        let src = Rc::new(batch.edge_src.clone());
        let dst = Rc::new(batch.edge_dst.clone());
        let e = batch.n_edges();

        let wh = self.w.forward(sess, store, h); // [n, d]
        let wh_src = sess.tape.gather_rows(wh, Rc::clone(&src));
        let wh_dst = sess.tape.gather_rows(wh, Rc::clone(&dst));

        // Shared attention vectors broadcast to every edge via a zero-index
        // gather (the table has a single row).
        let zero_ids = Rc::new(vec![0usize; e]);
        let a_src_table = sess.param(store, self.att_src);
        let a_dst_table = sess.param(store, self.att_dst);
        let a_src = sess.tape.gather_rows(a_src_table, Rc::clone(&zero_ids));
        let a_dst = sess.tape.gather_rows(a_dst_table, zero_ids);

        let ss = sess.tape.mul(wh_src, a_src);
        let sd = sess.tape.mul(wh_dst, a_dst);
        let s = sess.tape.add(ss, sd);
        let ind = sess.constant(self.head_indicator());
        let scores = sess.tape.matmul(s, ind); // [E, h]
        let mut scores = sess.tape.leaky_relu(scores, 0.2);

        // GNNExplainer log-mask on attention (see HetConvLayer).
        if let Some(mask) = edge_mask {
            let lm = sess.tape.log_eps(mask, 1e-6);
            let ones = sess.constant(Tensor::full(1, self.heads, 1.0));
            let lm_b = sess.tape.matmul(lm, ones);
            scores = sess.tape.add(scores, lm_b);
        }

        let alpha = sess.tape.segment_softmax(scores, Rc::clone(&dst), n);
        let alpha = if train && dropout > 0.0 {
            sess.tape.dropout(alpha, dropout, rng)
        } else {
            alpha
        };
        let ind_t = sess.constant(self.head_indicator().transpose());
        let alpha_blocks = sess.tape.matmul(alpha, ind_t);
        let mut msg = sess.tape.mul(wh_src, alpha_blocks);
        if let Some(mask) = edge_mask {
            msg = sess.tape.mul_col(msg, mask);
        }
        let agg = sess.tape.segment_sum(msg, dst, n);
        let out = sess.tape.add(agg, h); // residual
        sess.tape.relu(out)
    }
}

impl Model for GatModel {
    fn forward(
        &self,
        sess: &mut Session,
        batch: &SubgraphBatch,
        train: bool,
        rng: &mut StdRng,
        masks: &Masks,
    ) -> Var {
        let mut x = sess.constant(batch.features.clone());
        if let Some(fmask) = masks.feature_mask {
            x = sess.tape.mul(x, fmask);
        }
        let mut h = self.input_proj.forward(sess, &self.store, x);
        for layer in &self.layers {
            h = layer.forward(
                sess,
                &self.store,
                h,
                batch,
                masks.edge_mask,
                self.cfg.dropout,
                train,
                rng,
            );
        }
        let tgt = Rc::new(batch.targets.clone());
        let h_t = sess.tape.gather_rows(h, Rc::clone(&tgt));
        let h_t = sess.tape.tanh(h_t);
        let x_t = sess.tape.gather_rows(x, tgt);
        let cat = sess.tape.concat_cols(&[h_t, x_t]);
        self.head.forward(sess, &self.store, cat, train, rng)
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn name(&self) -> &'static str {
        "gat"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{predict_scores, train_step};
    use crate::sampler::{FullGraphSampler, Sampler};
    use xfraud_hetgraph::{GraphBuilder, NodeType};
    use xfraud_nn::AdamW;

    fn toy_batch() -> SubgraphBatch {
        let mut b = GraphBuilder::new(4);
        let f0 = b.add_txn([2.0, -2.0, 0.1, 0.0], Some(true));
        let b0 = b.add_txn([-2.0, 2.0, 0.1, 0.0], Some(false));
        let p = b.add_entity(NodeType::Pmt);
        b.link(f0, p).unwrap();
        b.link(b0, p).unwrap();
        let g = b.finish().unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        FullGraphSampler.sample(&g, &[0, 1], &mut rng)
    }

    #[test]
    fn gat_trains_on_separable_toy() {
        let mut model = GatModel::new(DetectorConfig::small(4, 3));
        let batch = toy_batch();
        let mut opt = AdamW::new(5e-3);
        let mut rng = StdRng::seed_from_u64(1);
        let first = train_step(&mut model, &batch, &mut opt, &mut rng);
        let mut last = first;
        for _ in 0..60 {
            last = train_step(&mut model, &batch, &mut opt, &mut rng);
        }
        assert!(last < first * 0.6, "{first} → {last}");
        let s = predict_scores(&model, &batch, &mut rng);
        assert!(s[0] > s[1]);
    }
}
