//! The xFraud detector (§3.2), its efficient variant detector+ (§3.2.3), the
//! GAT and GEM baselines (§4), and the two neighbourhood samplers whose
//! trade-off the paper's Fig. 10 ablates.
//!
//! Model inventory:
//!
//! * [`XFraudDetector`] — L self-attentive heterogeneous convolution layers
//!   ([`HetConvLayer`], eq. 1–10) followed by the tanh→concat→FFN prediction
//!   head of §3.2.1. *detector* vs *detector+* is purely a sampler choice:
//!   [`HgSampler`] (HGT's type-balancing HGSampling) vs [`SageSampler`]
//!   (GraphSAGE uniform k-hop).
//! * [`GatModel`] — homogeneous multi-head additive attention (type-blind).
//! * [`GemModel`] — per-type mean aggregation without attention (the
//!   "vanilla GCN on a heterogeneous graph" the paper uses GEM to stand for);
//!   its cheap convolution is why it wins the inference-latency column of
//!   Table 3.
//!
//! All models implement [`Model`], exposing the mask hooks
//! ([`Masks`]) the GNNExplainer needs: a per-edge mask multiplying messages
//! before aggregation and a node-feature mask multiplying the input features.

mod batch;
mod detector;
mod engine;
mod gat;
mod gem;
mod hetconv;
mod incremental;
mod model;
mod sampler;
mod train;

pub use batch::SubgraphBatch;
pub use detector::{DetectorConfig, XFraudDetector};
pub use engine::{batch_rng, default_num_workers, mix_seed, streams, BatchEngine};
pub use gat::GatModel;
pub use gem::GemModel;
pub use hetconv::HetConvLayer;
pub use incremental::{incremental_study, time_windows, IncrementalConfig, WindowReport};
pub use model::{average_grads, grad_step, predict_scores, train_step, Masks, Model};
pub use sampler::{
    shape_key_of, CommunitySampler, FullGraphSampler, HgSampler, SageSampler, Sampler,
};
pub use train::{train_test_split, EpochStats, TrainConfig, Trainer};
