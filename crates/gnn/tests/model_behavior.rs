//! Behavioural tests across the gnn crate's public API: mask semantics,
//! sampler/batch contracts, model comparability.

use rand::rngs::StdRng;
use rand::SeedableRng;
use xfraud_datagen::{Dataset, DatasetPreset};
use xfraud_gnn::{
    predict_scores, train_step, DetectorConfig, FullGraphSampler, GatModel, GemModel, Masks, Model,
    SageSampler, Sampler, SubgraphBatch, XFraudDetector,
};
use xfraud_nn::{AdamW, Session};
use xfraud_tensor::{softmax_rows, Tensor};

fn small_batch() -> SubgraphBatch {
    let g = Dataset::generate(DatasetPreset::EbaySmallSim, 3).graph;
    let seeds: Vec<usize> = g.labeled_txns().iter().take(24).map(|&(v, _)| v).collect();
    let mut rng = StdRng::seed_from_u64(1);
    SageSampler::new(2, 6).sample(&g, &seeds, &mut rng)
}

/// Masking every edge to zero must reduce each model to its feature-only
/// path: the prediction then equals the one on an edgeless batch.
#[test]
fn zero_edge_mask_equals_edge_removal() {
    let batch = small_batch();
    let mut edgeless = batch.clone();
    edgeless.edge_src.clear();
    edgeless.edge_dst.clear();
    edgeless.edge_ty.clear();

    let fd = batch.features.cols();
    let det = XFraudDetector::new(DetectorConfig::small(fd, 2));
    let mut rng = StdRng::seed_from_u64(2);

    let mut sess = Session::new();
    let mask = sess.constant(Tensor::zeros(batch.n_edges(), 1));
    let masked_logits = det.forward(
        &mut sess,
        &batch,
        false,
        &mut rng,
        &Masks {
            edge_mask: Some(mask),
            feature_mask: None,
        },
    );
    let masked = softmax_rows(sess.tape.value(masked_logits));

    let mut sess2 = Session::new();
    let bare_logits = det.forward(&mut sess2, &edgeless, false, &mut rng, &Masks::none());
    let bare = softmax_rows(sess2.tape.value(bare_logits));

    assert!(
        masked.max_abs_diff(&bare) < 1e-4,
        "zero mask and edge removal disagree by {}",
        masked.max_abs_diff(&bare)
    );
}

/// An all-ones edge mask must be a no-op.
#[test]
fn unit_edge_mask_is_identity() {
    let batch = small_batch();
    let fd = batch.features.cols();
    let det = XFraudDetector::new(DetectorConfig::small(fd, 2));
    let mut rng = StdRng::seed_from_u64(3);

    let mut sess = Session::new();
    let mask = sess.constant(Tensor::full(batch.n_edges(), 1, 1.0));
    let l1 = det.forward(
        &mut sess,
        &batch,
        false,
        &mut rng,
        &Masks {
            edge_mask: Some(mask),
            feature_mask: None,
        },
    );
    let with_mask = sess.tape.value(l1).clone();

    let mut sess2 = Session::new();
    let l2 = det.forward(&mut sess2, &batch, false, &mut rng, &Masks::none());
    let without = sess2.tape.value(l2).clone();
    assert!(with_mask.max_abs_diff(&without) < 1e-4);
}

/// A unit feature mask is a no-op; a zero feature mask kills the feature
/// path (scores become label-prior-ish and uniform across targets with
/// identical neighbourhood shapes).
#[test]
fn feature_mask_semantics() {
    let batch = small_batch();
    let fd = batch.features.cols();
    let det = XFraudDetector::new(DetectorConfig::small(fd, 2));
    let mut rng = StdRng::seed_from_u64(4);

    let mut sess = Session::new();
    let ones = sess.constant(Tensor::full(batch.n_nodes(), fd, 1.0));
    let l1 = det.forward(
        &mut sess,
        &batch,
        false,
        &mut rng,
        &Masks {
            edge_mask: None,
            feature_mask: Some(ones),
        },
    );
    let masked = sess.tape.value(l1).clone();
    let mut sess2 = Session::new();
    let l2 = det.forward(&mut sess2, &batch, false, &mut rng, &Masks::none());
    assert!(masked.max_abs_diff(sess2.tape.value(l2)) < 1e-4);
}

/// All three models train on the same data and improve their loss; their
/// scores are valid probabilities.
#[test]
fn all_models_train_on_the_same_batch() {
    let batch = small_batch();
    let fd = batch.features.cols();
    let mut rng = StdRng::seed_from_u64(5);

    fn drive<M: Model>(mut m: M, batch: &SubgraphBatch, rng: &mut StdRng) -> (f32, f32, Vec<f32>) {
        let mut opt = AdamW::new(3e-3);
        let first = train_step(&mut m, batch, &mut opt, rng);
        let mut last = first;
        for _ in 0..25 {
            last = train_step(&mut m, batch, &mut opt, rng);
        }
        let scores = predict_scores(&m, batch, rng);
        (first, last, scores)
    }

    for (name, result) in [
        (
            "xfraud",
            drive(
                XFraudDetector::new(DetectorConfig::small(fd, 6)),
                &batch,
                &mut rng,
            ),
        ),
        (
            "gat",
            drive(
                GatModel::new(DetectorConfig::small(fd, 6)),
                &batch,
                &mut rng,
            ),
        ),
        (
            "gem",
            drive(
                GemModel::new(DetectorConfig::small(fd, 6)),
                &batch,
                &mut rng,
            ),
        ),
    ] {
        let (first, last, scores) = result;
        assert!(
            last < first,
            "{name}: loss did not improve ({first} → {last})"
        );
        assert_eq!(scores.len(), batch.targets.len());
        assert!(
            scores.iter().all(|s| (0.0..=1.0).contains(s)),
            "{name} scores out of range"
        );
    }
}

/// The full-graph sampler plus `from_nodes` preserves feature rows exactly.
#[test]
fn batch_features_match_graph_rows() {
    let g = Dataset::generate(DatasetPreset::EbaySmallSim, 3).graph;
    let seeds: Vec<usize> = g.labeled_txns().iter().take(4).map(|&(v, _)| v).collect();
    let mut rng = StdRng::seed_from_u64(7);
    let batch = FullGraphSampler.sample(&g, &seeds, &mut rng);
    for (local, &global) in batch.global_ids.iter().enumerate() {
        match g.feature_row_of(global) {
            Some(row) => assert_eq!(batch.features.row(local), g.features().row(row)),
            None => assert!(batch.features.row(local).iter().all(|&x| x == 0.0)),
        }
    }
}
