//! Crash-recovery proptests: a [`DiskStore`] directory is mutilated the way
//! a kill at an arbitrary instant would leave it — torn WAL tails, orphaned
//! `.tmp` segment builds, compaction interrupted before or after its rename
//! — and reopening must (a) succeed, (b) drop exactly the torn suffix, and
//! (c) never lose an acknowledged write.
//!
//! "Acknowledged" means `put` returned and the bytes reached the WAL (the
//! tests `sync()` before simulating the crash, standing in for the OS
//! surviving — these tests model *process* death, not device-level
//! write-reordering).

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use proptest::prelude::*;
use xfraud_diskstore::{BlockStore, DiskStore, DiskStoreOptions};
use xfraud_kvstore::{framing, KvStore};

fn temp_dir(tag: &str, salt: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "xfraud-crash-{tag}-{}-{salt:016x}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// No auto-flush, no auto-compaction: the tests drive both explicitly so
/// the simulated crash point is exact.
fn opts() -> DiskStoreOptions {
    DiskStoreOptions {
        block_bytes: 256,
        memtable_bytes: 1 << 30,
        compact_at_segments: usize::MAX,
        prefer_mmap: true,
    }
}

fn scan_map(store: &DiskStore) -> BTreeMap<Vec<u8>, Vec<u8>> {
    let mut got = BTreeMap::new();
    store.scan(&mut |k, v| {
        got.insert(k.to_vec(), v.to_vec());
    });
    got
}

/// The store keeps exactly one live WAL outside of a flush window.
fn sole_wal(dir: &Path) -> PathBuf {
    let mut wals: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            let n = p.file_name().unwrap().to_string_lossy();
            n.starts_with("wal-") && n.ends_with(".log")
        })
        .collect();
    wals.sort();
    assert_eq!(wals.len(), 1, "expected exactly one live WAL");
    wals.pop().unwrap()
}

fn copy_dir(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).unwrap();
    for e in fs::read_dir(src).unwrap().filter_map(|e| e.ok()) {
        fs::copy(e.path(), dst.join(e.file_name())).unwrap();
    }
}

fn put_strategy() -> impl Strategy<Value = (u8, Vec<u8>)> {
    (any::<u8>(), prop::collection::vec(any::<u8>(), 0..12))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Kill mid-WAL-append: truncate the live WAL at an arbitrary byte.
    /// Reopening must keep the flushed prefix plus exactly the complete
    /// WAL frames before the cut — byte-for-byte the state a replay of the
    /// acknowledged history predicts — and report the torn remainder.
    #[test]
    fn torn_wal_tail_recovers_every_complete_frame(
        puts in prop::collection::vec(put_strategy(), 1..60),
        flush_seed in any::<u64>(),
        cut_seed in any::<u64>(),
        salt in any::<u64>(),
    ) {
        let dir = temp_dir("torn", salt);
        let n_flush = (flush_seed as usize) % (puts.len() + 1);
        {
            let store = DiskStore::open(&dir, opts()).unwrap();
            for (i, (k, v)) in puts.iter().enumerate() {
                if i == n_flush {
                    store.flush().unwrap();
                }
                store.put(&[*k], v);
            }
            store.sync().unwrap();
        }

        // Simulate the kill: drop an arbitrary suffix of the live WAL.
        let wal = sole_wal(&dir);
        let buf = fs::read(&wal).unwrap();
        let cut = (cut_seed as usize) % (buf.len() + 1);
        let keep_len = buf.len() - cut;
        fs::write(&wal, &buf[..keep_len]).unwrap();

        // Expected state: flushed prefix, then every complete WAL frame.
        // (If the flush point was 0 or past the end it was a no-op and the
        // WAL covers everything — the frame walk below handles both.)
        let wal_from = if n_flush >= puts.len() { puts.len() } else { n_flush };
        let mut expect: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for (k, v) in &puts[..wal_from] {
            expect.insert(vec![*k], v.clone());
        }
        let mut off = 0usize;
        for (k, v) in &puts[wal_from..] {
            let frame = framing::encoded_len(1, v.len());
            if off + frame > keep_len {
                break;
            }
            expect.insert(vec![*k], v.clone());
            off += frame;
        }

        let store = DiskStore::open(&dir, opts()).unwrap();
        prop_assert_eq!(store.recovery_stats().torn_bytes, (keep_len - off) as u64);
        prop_assert_eq!(scan_map(&store), expect);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Kill mid-segment-build: the crash leaves a partial `.tmp` image, and
    /// the frozen records' WAL is still on disk (flush deletes it only
    /// after the rename lands). Recovery must discard the `.tmp` and serve
    /// every acknowledged write from segments + WAL replay.
    #[test]
    fn kill_during_segment_write_loses_nothing(
        puts in prop::collection::vec(put_strategy(), 1..80),
        flush_seed in any::<u64>(),
        garbage in prop::collection::vec(any::<u8>(), 1..200),
        salt in any::<u64>(),
    ) {
        let dir = temp_dir("segtmp", salt);
        let n_flush = (flush_seed as usize) % (puts.len() + 1);
        let mut expect: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        {
            let store = DiskStore::open(&dir, opts()).unwrap();
            for (i, (k, v)) in puts.iter().enumerate() {
                if i == n_flush {
                    store.flush().unwrap();
                }
                store.put(&[*k], v);
                expect.insert(vec![*k], v.clone());
            }
            store.sync().unwrap();
        }
        // A partial image of the build that never finished.
        fs::write(dir.join("seg-00009999.tmp"), &garbage).unwrap();

        let store = DiskStore::open(&dir, opts()).unwrap();
        prop_assert_eq!(store.recovery_stats().removed_tmp, 1);
        prop_assert!(!dir.join("seg-00009999.tmp").exists());
        prop_assert_eq!(scan_map(&store), expect);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Kill during compaction, both windows: (a) before the merged
    /// segment's rename (only a `.tmp` exists), and (b) after the rename
    /// but before the old segments are deleted (merged + old coexist).
    /// Either way the live set must read back unchanged.
    #[test]
    fn kill_during_compaction_preserves_the_live_set(
        rounds in prop::collection::vec(
            prop::collection::vec(put_strategy(), 1..25), 2..5),
        garbage in prop::collection::vec(any::<u8>(), 1..300),
        salt in any::<u64>(),
    ) {
        let dir = temp_dir("compact", salt);
        let mut expect: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        {
            let store = DiskStore::open(&dir, opts()).unwrap();
            for round in &rounds {
                for (k, v) in round {
                    store.put(&[*k], v);
                    expect.insert(vec![*k], v.clone());
                }
                store.flush().unwrap();
            }
            prop_assert!(store.storage_stats().n_segments >= 2);
        }

        // Window (b) needs the merged segment: run the compaction to
        // completion in a scratch copy and steal its output file.
        let dir_done = temp_dir("compact-done", salt);
        copy_dir(&dir, &dir_done);
        let merged = {
            let store = DiskStore::open(&dir_done, opts()).unwrap();
            store.compact().unwrap();
            prop_assert_eq!(store.storage_stats().n_segments, 1);
            let mut segs: Vec<PathBuf> = fs::read_dir(&dir_done).unwrap()
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "seg"))
                .collect();
            prop_assert_eq!(segs.len(), 1);
            segs.pop().unwrap()
        };

        // (a) crash before rename: partial merged image as `.tmp`.
        let dir_a = temp_dir("compact-a", salt);
        copy_dir(&dir, &dir_a);
        fs::write(dir_a.join("seg-00009999.tmp"), &garbage).unwrap();
        let store = DiskStore::open(&dir_a, opts()).unwrap();
        prop_assert_eq!(store.recovery_stats().removed_tmp, 1);
        prop_assert_eq!(scan_map(&store), expect.clone());
        drop(store);

        // (b) crash after rename, before the old-segment deletes: the
        // merged segment (newest id) coexists with everything it shadows.
        let dir_b = temp_dir("compact-b", salt);
        copy_dir(&dir, &dir_b);
        fs::copy(&merged, dir_b.join(merged.file_name().unwrap())).unwrap();
        let store = DiskStore::open(&dir_b, opts()).unwrap();
        prop_assert!(store.recovery_stats().segments_open > 1);
        prop_assert_eq!(scan_map(&store), expect);
        drop(store);

        for d in [&dir, &dir_done, &dir_a, &dir_b] {
            fs::remove_dir_all(d).unwrap();
        }
    }
}

/// External corruption (a flipped byte in a sealed segment's footer) is
/// outside the crash model, but the store must fail safe: exclude the
/// segment that fails structural validation, open anyway, and report it —
/// never refuse to start over one bad file.
#[test]
fn corrupted_segment_is_dropped_not_served() {
    let dir = temp_dir("flip", 0);
    {
        let store = DiskStore::open(&dir, opts()).unwrap();
        for i in 0..200u64 {
            store.put(&i.to_be_bytes(), format!("v{i}").as_bytes());
        }
        store.flush().unwrap();
    }
    let seg: PathBuf = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "seg"))
        .unwrap();
    let mut bytes = fs::read(&seg).unwrap();
    let magic_byte = bytes.len() - 5; // inside the trailing magic
    bytes[magic_byte] ^= 0x40;
    fs::write(&seg, &bytes).unwrap();

    let store = DiskStore::open(&dir, opts()).unwrap();
    assert_eq!(store.recovery_stats().dropped_segments, 1);
    assert_eq!(store.recovery_stats().segments_open, 0);
    assert_eq!(store.len(), 0, "a failed-validation segment must not serve");
    fs::remove_dir_all(&dir).unwrap();
}
