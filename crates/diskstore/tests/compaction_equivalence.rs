//! Compaction determinism, proptest-pinned: merging any pile of segments
//! must produce a segment file **bit-identical** to building one from
//! scratch out of the final live map. This is the property that makes
//! compaction safe to reason about — the on-disk image is a pure function
//! of (live map, block geometry), never of merge history, segment ids, or
//! timing.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use proptest::prelude::*;
use xfraud_diskstore::{BlockStore, DiskStore, DiskStoreOptions};
use xfraud_kvstore::KvStore;

fn temp_dir(tag: &str, salt: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "xfraud-ceq-{tag}-{}-{salt:016x}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn opts() -> DiskStoreOptions {
    DiskStoreOptions {
        block_bytes: 256,
        memtable_bytes: 1 << 30,
        compact_at_segments: usize::MAX,
        prefer_mmap: true,
    }
}

/// The single sealed segment of a store directory.
fn single_segment_bytes(dir: &Path) -> Vec<u8> {
    let segs: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "seg"))
        .collect();
    assert_eq!(segs.len(), 1, "expected exactly one segment in {dir:?}");
    fs::read(&segs[0]).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Multi-round overwriting history, flushed into several segments and
    /// compacted, versus the final live map flushed once into a fresh
    /// store: identical segment bytes, identical scans.
    #[test]
    fn compacted_segment_is_bit_identical_to_fresh_build(
        rounds in prop::collection::vec(
            prop::collection::vec(
                (any::<u8>(), prop::collection::vec(any::<u8>(), 0..16)),
                1..40),
            2..5),
        salt in any::<u64>(),
    ) {
        let dir_hist = temp_dir("hist", salt);
        let dir_fresh = temp_dir("fresh", salt);

        // History store: several flushed generations, then one compaction.
        let hist = DiskStore::open(&dir_hist, opts()).unwrap();
        let mut live: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for round in &rounds {
            for (k, v) in round {
                hist.put(&[*k], v);
                live.insert(vec![*k], v.clone());
            }
            hist.flush().unwrap();
        }
        prop_assert!(hist.storage_stats().n_segments >= 2);
        hist.compact().unwrap();
        prop_assert_eq!(hist.storage_stats().n_segments, 1);

        // Fresh store: the live map, one flush, no history.
        let fresh = DiskStore::open(&dir_fresh, opts()).unwrap();
        for (k, v) in &live {
            fresh.put(k, v);
        }
        fresh.flush().unwrap();
        prop_assert_eq!(fresh.storage_stats().n_segments, 1);

        let a = single_segment_bytes(&dir_hist);
        let b = single_segment_bytes(&dir_fresh);
        prop_assert!(a == b, "compacted and fresh segment images diverge \
                              ({} vs {} bytes)", a.len(), b.len());

        let mut got = BTreeMap::new();
        hist.scan(&mut |k, v| {
            got.insert(k.to_vec(), v.to_vec());
        });
        prop_assert_eq!(got, live);

        fs::remove_dir_all(&dir_hist).unwrap();
        fs::remove_dir_all(&dir_fresh).unwrap();
    }

    /// Compacting a single-segment store is a no-op: same file, same bytes.
    #[test]
    fn compaction_is_idempotent(
        puts in prop::collection::vec(
            (any::<u8>(), prop::collection::vec(any::<u8>(), 0..16)), 1..60),
        salt in any::<u64>(),
    ) {
        let dir = temp_dir("idem", salt);
        let store = DiskStore::open(&dir, opts()).unwrap();
        for (k, v) in &puts {
            store.put(&[*k], v);
        }
        store.flush().unwrap();
        store.compact().unwrap();
        let first = single_segment_bytes(&dir);
        store.compact().unwrap();
        let second = single_segment_bytes(&dir);
        prop_assert!(first == second);
        fs::remove_dir_all(&dir).unwrap();
    }
}
