//! Immutable sorted segment files.
//!
//! A segment is the unit of on-disk storage: a sorted run of `(key, value)`
//! records packed into fixed-target-size **blocks**, followed by a sparse
//! **index** (one entry per block) and a fixed-size **footer**. Layout:
//!
//! ```text
//! ┌────────────────────────── data region ──────────────────────────┐
//! │ block 0: checked frames │ block 1: checked frames │ …           │
//! ├─────────────────────────── index ───────────────────────────────┤
//! │ per block: offset u64 │ len u32 │ first_key_len u32 │ first_key │
//! ├─────────────────────── footer (48 bytes) ───────────────────────┤
//! │ index_off u64 │ index_len u64 │ n_records u64 │ n_blocks u32    │
//! │ block_target u32 │ index_crc u32 │ footer_crc u32 │ magic u64   │
//! └─────────────────────────────────────────────────────────────────┘
//! ```
//!
//! All integers are little-endian. Records inside a block use the *checked*
//! frame variant of [`xfraud_kvstore::framing`] (CRC-32 per record);
//! `index_crc` covers the index bytes and `footer_crc` the footer's first
//! 36 bytes, so [`Segment::open`] can validate structure without scanning
//! the data region. A lookup binary-searches the index by block first-key,
//! then scans one block's frames.
//!
//! Segment content is a pure function of the record sequence and the block
//! target — no ids, timestamps or padding — which is what makes compaction
//! provably bit-identical to a from-scratch build of the same live set.

use std::fs::File;
use std::ops::Range;
use std::path::{Path, PathBuf};

use xfraud_kvstore::framing;

use crate::error::StoreError;
use crate::mmap::Mmap;

/// `"xFSEG"` + format version 1.
const SEGMENT_MAGIC: u64 = 0x7846_5345_4700_0001;
/// Fixed footer size in bytes.
pub const FOOTER_LEN: usize = 48;

/// Builds one segment's byte image from an ascending key sequence.
pub struct SegmentBuilder {
    block_target: usize,
    data: Vec<u8>,
    index: Vec<u8>,
    n_blocks: u32,
    n_records: u64,
    block_start: usize,
    block_first_key: Option<Vec<u8>>,
    last_key: Option<Vec<u8>>,
}

impl SegmentBuilder {
    /// `block_target` is the soft block size: a block closes once adding
    /// the next record would push it past the target (a single oversized
    /// record still becomes one block).
    pub fn new(block_target: usize) -> SegmentBuilder {
        SegmentBuilder {
            block_target: block_target.max(1),
            data: Vec::new(),
            index: Vec::new(),
            n_blocks: 0,
            n_records: 0,
            block_start: 0,
            block_first_key: None,
            last_key: None,
        }
    }

    /// Appends one record. Keys must arrive in strictly ascending order.
    pub fn add(&mut self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        if let Some(last) = &self.last_key {
            if key <= last.as_slice() {
                return Err(StoreError::UnsortedKeys);
            }
        }
        let frame_len = framing::encoded_len_checked(key.len(), value.len());
        let open_block_len = self.data.len() - self.block_start;
        if self.block_first_key.is_some() && open_block_len + frame_len > self.block_target {
            self.seal_block();
        }
        if self.block_first_key.is_none() {
            self.block_start = self.data.len();
            self.block_first_key = Some(key.to_vec());
        }
        framing::encode_checked_into(key, value, &mut self.data);
        self.n_records += 1;
        self.last_key = Some(key.to_vec());
        Ok(())
    }

    fn seal_block(&mut self) {
        let Some(first_key) = self.block_first_key.take() else {
            return;
        };
        let len = self.data.len() - self.block_start;
        self.index
            .extend_from_slice(&(self.block_start as u64).to_le_bytes());
        self.index.extend_from_slice(&(len as u32).to_le_bytes());
        self.index
            .extend_from_slice(&(first_key.len() as u32).to_le_bytes());
        self.index.extend_from_slice(&first_key);
        self.n_blocks += 1;
    }

    /// Number of records added so far.
    pub fn n_records(&self) -> u64 {
        self.n_records
    }

    /// Seals the open block and returns the complete segment image
    /// (data ++ index ++ footer).
    pub fn finish(mut self) -> Vec<u8> {
        self.seal_block();
        let index_off = self.data.len() as u64;
        let index_len = self.index.len() as u64;
        let index_crc = framing::crc32(&self.index);
        let mut out = self.data;
        out.extend_from_slice(&self.index);
        let footer_start = out.len();
        out.extend_from_slice(&index_off.to_le_bytes());
        out.extend_from_slice(&index_len.to_le_bytes());
        out.extend_from_slice(&self.n_records.to_le_bytes());
        out.extend_from_slice(&self.n_blocks.to_le_bytes());
        out.extend_from_slice(&(self.block_target as u32).to_le_bytes());
        out.extend_from_slice(&index_crc.to_le_bytes());
        let footer_crc = framing::crc32(&out[footer_start..]);
        out.extend_from_slice(&footer_crc.to_le_bytes());
        out.extend_from_slice(&SEGMENT_MAGIC.to_le_bytes());
        out
    }
}

/// One block's index entry, resolved against the segment buffer.
struct BlockMeta {
    /// Data-region byte range of the block.
    bytes: Range<usize>,
    /// Buffer range holding the block's first key.
    first_key: Range<usize>,
}

/// An open (usually memory-mapped) immutable segment.
pub struct Segment {
    data: Mmap,
    blocks: Vec<BlockMeta>,
    n_records: u64,
    path: PathBuf,
}

fn read_u64(buf: &[u8], pos: usize) -> Option<u64> {
    let bytes: &[u8; 8] = buf.get(pos..pos + 8)?.try_into().ok()?;
    Some(u64::from_le_bytes(*bytes))
}

fn read_u32(buf: &[u8], pos: usize) -> Option<u32> {
    let bytes: &[u8; 4] = buf.get(pos..pos + 4)?.try_into().ok()?;
    Some(u32::from_le_bytes(*bytes))
}

impl Segment {
    /// Opens and structurally validates a segment file: magic, footer CRC,
    /// index CRC, and every index entry's bounds. Record payloads are *not*
    /// scanned here — each record carries its own CRC, checked on read.
    pub fn open(path: &Path, prefer_mmap: bool) -> Result<Segment, StoreError> {
        let mut file = File::open(path)?;
        let data = Mmap::open(&mut file, prefer_mmap)?;
        let corrupt = |detail: &str| StoreError::Corrupt {
            path: path.to_path_buf(),
            detail: detail.to_string(),
        };
        let buf = data.as_slice();
        if buf.len() < FOOTER_LEN {
            return Err(corrupt("shorter than footer"));
        }
        let footer = buf.len() - FOOTER_LEN;
        if read_u64(buf, footer + 40) != Some(SEGMENT_MAGIC) {
            return Err(corrupt("bad magic"));
        }
        let stored_footer_crc =
            read_u32(buf, footer + 36).ok_or_else(|| corrupt("short footer"))?;
        if framing::crc32(&buf[footer..footer + 36]) != stored_footer_crc {
            return Err(corrupt("footer checksum mismatch"));
        }
        let index_off = read_u64(buf, footer).ok_or_else(|| corrupt("short footer"))? as usize;
        let index_len = read_u64(buf, footer + 8).ok_or_else(|| corrupt("short footer"))? as usize;
        let n_records = read_u64(buf, footer + 16).ok_or_else(|| corrupt("short footer"))?;
        let n_blocks = read_u32(buf, footer + 24).ok_or_else(|| corrupt("short footer"))? as usize;
        if index_off.checked_add(index_len) != Some(footer) {
            return Err(corrupt("index does not abut footer"));
        }
        let stored_index_crc = read_u32(buf, footer + 32).ok_or_else(|| corrupt("short footer"))?;
        let index = &buf[index_off..index_off + index_len];
        if framing::crc32(index) != stored_index_crc {
            return Err(corrupt("index checksum mismatch"));
        }
        let mut blocks = Vec::with_capacity(n_blocks);
        let mut pos = 0usize;
        for _ in 0..n_blocks {
            let off =
                read_u64(index, pos).ok_or_else(|| corrupt("truncated index entry"))? as usize;
            let len =
                read_u32(index, pos + 8).ok_or_else(|| corrupt("truncated index entry"))? as usize;
            let key_len =
                read_u32(index, pos + 12).ok_or_else(|| corrupt("truncated index entry"))? as usize;
            let key_start = pos + 16;
            if key_start + key_len > index.len() {
                return Err(corrupt("index entry key out of bounds"));
            }
            if off
                .checked_add(len)
                .map(|end| end > index_off)
                .unwrap_or(true)
            {
                return Err(corrupt("block extends past data region"));
            }
            blocks.push(BlockMeta {
                bytes: off..off + len,
                first_key: index_off + key_start..index_off + key_start + key_len,
            });
            pos = key_start + key_len;
        }
        if pos != index.len() {
            return Err(corrupt("index has trailing bytes"));
        }
        Ok(Segment {
            data,
            blocks,
            n_records,
            path: path.to_path_buf(),
        })
    }

    /// Number of records the footer declares.
    pub fn n_records(&self) -> u64 {
        self.n_records
    }

    /// Number of blocks.
    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Total file size in bytes.
    pub fn file_bytes(&self) -> usize {
        self.data.as_slice().len()
    }

    /// Whether the file is served from mapped pages (vs an owned copy).
    pub fn is_mapped(&self) -> bool {
        self.data.is_mapped()
    }

    /// The file this segment was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn first_key(&self, b: &BlockMeta) -> &[u8] {
        &self.data.as_slice()[b.first_key.clone()]
    }

    /// Looks `key` up, returning the stored value as a slice borrowed
    /// straight from the (mapped) segment buffer — the zero-copy read. A
    /// record whose per-frame CRC fails is a [`StoreError::Corrupt`], not
    /// an absent key.
    pub fn get(&self, key: &[u8]) -> Result<Option<&[u8]>, StoreError> {
        // Last block whose first key is <= key holds the only candidates.
        let Some(idx) = self
            .blocks
            .partition_point(|b| self.first_key(b) <= key)
            .checked_sub(1)
        else {
            return Ok(None);
        };
        let block = &self.data.as_slice()[self.blocks[idx].bytes.clone()];
        for rec in framing::CheckedFrameIter::new(block) {
            let (k, v) = rec.map_err(|e| self.frame_error(idx, e))?;
            if k == key {
                return Ok(Some(v));
            }
            if k > key {
                break;
            }
        }
        Ok(None)
    }

    fn frame_error(&self, block_idx: usize, e: framing::FrameError) -> StoreError {
        StoreError::Corrupt {
            path: self.path.clone(),
            detail: format!("block {block_idx}: {e}"),
        }
    }

    /// Iterates every record in key order (blocks are sorted and so are the
    /// records within each).
    pub fn iter(&self) -> SegmentIter<'_> {
        SegmentIter {
            segment: self,
            block_idx: 0,
            frames: framing::CheckedFrameIter::new(match self.blocks.first() {
                Some(b) => &self.data.as_slice()[b.bytes.clone()],
                None => &[],
            }),
        }
    }

    /// Fully scans every block, verifying each record's CRC. Returns the
    /// number of records, or a corruption error.
    pub fn verify_all_blocks(&self) -> Result<u64, StoreError> {
        let mut count = 0u64;
        for (idx, b) in self.blocks.iter().enumerate() {
            let block = &self.data.as_slice()[b.bytes.clone()];
            for rec in framing::CheckedFrameIter::new(block) {
                rec.map_err(|e| self.frame_error(idx, e))?;
                count += 1;
            }
        }
        if count != self.n_records {
            return Err(StoreError::Corrupt {
                path: self.path.clone(),
                detail: format!("footer declares {} records, found {count}", self.n_records),
            });
        }
        Ok(count)
    }
}

/// Iterator of [`Segment::iter`].
pub struct SegmentIter<'a> {
    segment: &'a Segment,
    block_idx: usize,
    frames: framing::CheckedFrameIter<'a>,
}

impl<'a> Iterator for SegmentIter<'a> {
    /// One record, or the typed corruption error that stopped the scan.
    type Item = Result<(&'a [u8], &'a [u8]), StoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(rec) = self.frames.next() {
                return Some(rec.map_err(|e| self.segment.frame_error(self.block_idx, e)));
            }
            self.block_idx += 1;
            let b = self.segment.blocks.get(self.block_idx)?;
            self.frames =
                framing::CheckedFrameIter::new(&self.segment.data.as_slice()[b.bytes.clone()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn write_temp(name: &str, bytes: &[u8]) -> PathBuf {
        let path = std::env::temp_dir().join(format!("xfraud-seg-test-{name}.seg"));
        let mut f = File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        f.sync_all().unwrap();
        path
    }

    fn sample_records(n: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
        (0..n)
            .map(|i| {
                let k = (i as u64).to_be_bytes().to_vec();
                let v = vec![(i % 251) as u8; 16 + i % 40];
                (k, v)
            })
            .collect()
    }

    fn build(records: &[(Vec<u8>, Vec<u8>)], block_target: usize) -> Vec<u8> {
        let mut b = SegmentBuilder::new(block_target);
        for (k, v) in records {
            b.add(k, v).unwrap();
        }
        b.finish()
    }

    #[test]
    fn roundtrip_all_records_and_gets() {
        let records = sample_records(300);
        let path = write_temp("roundtrip", &build(&records, 256));
        let seg = Segment::open(&path, true).unwrap();
        assert_eq!(seg.n_records(), 300);
        assert!(seg.n_blocks() > 1, "256-byte target must split blocks");
        let scanned: Vec<_> = seg
            .iter()
            .map(|rec| rec.map(|(k, v)| (k.to_vec(), v.to_vec())).unwrap())
            .collect();
        assert_eq!(scanned, records);
        for (k, v) in &records {
            assert_eq!(seg.get(k).unwrap(), Some(v.as_slice()));
        }
        assert_eq!(seg.get(b"nonexistent-key-way-past").unwrap(), None);
        assert_eq!(
            seg.get(&0u64.to_be_bytes()[..7]).unwrap(),
            None,
            "short key misses"
        );
        assert_eq!(seg.verify_all_blocks().unwrap(), 300);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_segment_opens_and_serves_nothing() {
        let path = write_temp("empty", &build(&[], 4096));
        let seg = Segment::open(&path, true).unwrap();
        assert_eq!(seg.n_records(), 0);
        assert_eq!(seg.n_blocks(), 0);
        assert_eq!(seg.get(b"anything").unwrap(), None);
        assert_eq!(seg.iter().count(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unsorted_keys_are_rejected() {
        let mut b = SegmentBuilder::new(4096);
        b.add(b"b", b"1").unwrap();
        assert!(matches!(b.add(b"a", b"2"), Err(StoreError::UnsortedKeys)));
        assert!(matches!(b.add(b"b", b"3"), Err(StoreError::UnsortedKeys)));
    }

    #[test]
    fn build_is_deterministic() {
        let records = sample_records(120);
        assert_eq!(build(&records, 512), build(&records, 512));
        assert_ne!(
            build(&records, 512),
            build(&records, 1024),
            "block geometry is part of the image"
        );
    }

    #[test]
    fn torn_or_corrupt_footer_is_rejected() {
        let records = sample_records(50);
        let image = build(&records, 512);
        // Torn: any strict prefix must fail to open.
        for cut in [0, 10, image.len() - FOOTER_LEN, image.len() - 1] {
            let path = write_temp("torn", &image[..cut]);
            assert!(Segment::open(&path, true).is_err(), "cut at {cut}");
            std::fs::remove_file(&path).unwrap();
        }
        // Bit flip in the footer: caught by footer crc or magic.
        let mut flipped = image.clone();
        let n = flipped.len();
        flipped[n - 20] ^= 0x40;
        let path = write_temp("flipped-footer", &flipped);
        assert!(Segment::open(&path, true).is_err());
        std::fs::remove_file(&path).unwrap();
        // Bit flip in the index: caught by index crc.
        let footer = image.len() - FOOTER_LEN;
        let index_off = u64::from_le_bytes(image[footer..footer + 8].try_into().unwrap()) as usize;
        let mut flipped = image.clone();
        flipped[index_off] ^= 0x01;
        let path = write_temp("flipped-index", &flipped);
        assert!(Segment::open(&path, true).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_record_is_a_typed_error_not_an_absent_key() {
        let records = sample_records(40);
        let mut image = build(&records, 256);
        // Flip one byte early in the data region (inside the first record).
        image[12] ^= 0x80;
        let path = write_temp("flipped-record", &image);
        let seg = Segment::open(&path, true).unwrap(); // structure still valid
        assert!(seg.verify_all_blocks().is_err());
        // A point read through the corrupt block errors instead of
        // pretending the key is absent.
        assert!(matches!(
            seg.get(&records[0].0),
            Err(StoreError::Corrupt { .. })
        ));
        // The full scan surfaces the same typed error mid-iteration.
        assert!(seg
            .iter()
            .any(|rec| matches!(rec, Err(StoreError::Corrupt { .. }))));
        std::fs::remove_file(&path).unwrap();
    }
}
