use std::fmt;
use std::path::PathBuf;

/// Typed failures of the on-disk store.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// A file failed structural validation (bad magic, checksum mismatch,
    /// out-of-bounds index entry). `detail` says which check failed.
    Corrupt { path: PathBuf, detail: String },
    /// [`crate::SegmentBuilder::add`] was called with keys out of ascending
    /// order — segments are sorted by construction.
    UnsortedKeys,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::Corrupt { path, detail } => {
                write!(f, "corrupt file {}: {detail}", path.display())
            }
            StoreError::UnsortedKeys => write!(f, "segment keys must be added in ascending order"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}
