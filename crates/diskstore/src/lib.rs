//! Out-of-core storage for paper-scale graphs (§3.3.3, Fig. 12/13).
//!
//! The paper's decisive systems finding is that KV-store architecture
//! dominates epoch time: LevelDB's single-writer lock made feature loading
//! the bottleneck (45 min/epoch on eBay-large) while LMDB's multi-reader
//! `mmap` design cut it to about a minute. The in-RAM stores in
//! `xfraud-kvstore` reproduce that contrast as a lock-contention profile;
//! this crate reproduces it **on real files**:
//!
//! * [`Segment`]/[`SegmentBuilder`] — the immutable block-structured
//!   on-disk format: sorted checked-frame records packed into fixed-target
//!   blocks, a sparse per-block index, and a checksummed footer.
//! * [`Mmap`] — a thin hand-rolled read-only `mmap` wrapper (with an
//!   owned-buffer fallback); see its module docs for the safety argument.
//! * [`DiskStore`] — an LSM-lite store behind the [`BlockStore`] trait
//!   (which extends the [`xfraud_kvstore::KvStore`] contract): WAL +
//!   memtable writes, zero-copy multi-reader gets from mapped segment
//!   pages, crash recovery that drops torn tails but never an acknowledged
//!   write, and deterministic compaction whose output is bit-identical to
//!   a from-scratch build of the same live set.
//!
//! Layer [`xfraud_kvstore::FeatureStore`] over a [`DiskStore`] to serve
//! dense feature batches straight from disk — the out-of-core loader path
//! used by the streaming dataset in `xfraud-datagen`.

mod error;
mod mmap;
mod segment;
mod store;

pub use error::StoreError;
pub use mmap::Mmap;
pub use segment::{Segment, SegmentBuilder, FOOTER_LEN};
pub use store::{BlockStore, DiskStore, DiskStoreOptions, RecoveryStats, StorageStats};

pub type Result<T> = std::result::Result<T, StoreError>;
