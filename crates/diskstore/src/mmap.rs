//! A thin read-only `mmap` wrapper: the multi-reader zero-copy substrate of
//! the paper's LMDB finding (§3.3.3, Fig. 13), hand-rolled because the
//! offline workspace has no `memmap2`.
//!
//! # Safety argument
//!
//! Memory-mapping a file hands out `&[u8]` into storage the OS may change
//! under us; soundness therefore rests on a *protocol*, not on the wrapper:
//!
//! 1. **Only sealed files are mapped.** The store maps exactly the segment
//!    files it (or a previous incarnation) produced via
//!    write-temp → `fsync` → atomic `rename`. A `.seg` file is never
//!    written to again after the rename — compaction writes *new* files and
//!    deletes old ones.
//! 2. **Deletion does not invalidate live mappings.** On Linux, unlinking a
//!    mapped file keeps its pages valid until the last `munmap` — the inode
//!    outlives the directory entry. So compaction can delete a segment
//!    while readers still hold it.
//! 3. **The mapping is `PROT_READ`/`MAP_SHARED`.** Nothing in this process
//!    writes through it, and immutability of the file (point 1) means
//!    nothing outside does either. An external actor truncating or
//!    rewriting a segment in place violates the store's ownership of its
//!    directory and is outside the trust boundary (same class as `rm -rf`
//!    on a database directory).
//! 4. **Every read is bounds-checked** against the length captured at map
//!    time (`as_slice` is an ordinary slice).
//!
//! When mapping is unavailable (non-unix target, `prefer_mmap = false`, or
//! the syscall fails) the wrapper falls back to reading the whole file into
//! an owned buffer — same interface, no zero-copy.

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: i32 = 1;
    const MAP_SHARED: i32 = 1;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, length: usize) -> i32;
    }

    /// Maps `len` bytes of `file` read-only. `len` must be non-zero.
    pub(super) fn map(file: &File, len: usize) -> io::Result<*const u8> {
        // SAFETY: a fresh anonymous-address read-only shared mapping of a
        // file descriptor we hold open; the kernel validates fd/len. The
        // returned pages are only ever read (PROT_READ), and module docs
        // argue the mapped file is immutable for the mapping's lifetime.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(ptr as *const u8)
    }

    /// Unmaps a region previously returned by [`map`].
    pub(super) fn unmap(ptr: *const u8, len: usize) {
        // SAFETY: (ptr, len) came from a successful `map` call and is
        // unmapped exactly once, by `Mmap::drop`.
        unsafe {
            munmap(ptr as *mut c_void, len);
        }
    }
}

enum Backing {
    /// Pages mapped straight from the file — shared, zero-copy.
    #[cfg(unix)]
    Mapped { ptr: *const u8, len: usize },
    /// Whole-file copy in heap memory — the portable fallback.
    Owned(Vec<u8>),
}

/// A read-only view of an entire file, memory-mapped when possible.
pub struct Mmap {
    backing: Backing,
}

// SAFETY: the mapped variant is an immutable region (PROT_READ, and the
// module-level protocol makes the underlying file immutable); concurrent
// reads from any number of threads are safe, and ownership transfer moves
// only the pointer. The owned variant is a plain Vec.
unsafe impl Send for Mmap {}
// SAFETY: see above — shared `&Mmap` access only ever reads.
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps `file` read-only in its entirety. With `prefer_mmap = false`
    /// (or on targets without `mmap`, or if the syscall fails) the file is
    /// read into an owned buffer instead.
    pub fn open(file: &mut File, prefer_mmap: bool) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        let len = usize::try_from(len).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidData, "file larger than address space")
        })?;
        if len == 0 {
            // mmap(len = 0) is EINVAL; an empty view needs no pages.
            return Ok(Mmap {
                backing: Backing::Owned(Vec::new()),
            });
        }
        #[cfg(unix)]
        if prefer_mmap {
            if let Ok(ptr) = sys::map(file, len) {
                return Ok(Mmap {
                    backing: Backing::Mapped { ptr, len },
                });
            }
        }
        let _ = prefer_mmap;
        file.seek(SeekFrom::Start(0))?;
        let mut buf = Vec::with_capacity(len);
        file.read_to_end(&mut buf)?;
        Ok(Mmap {
            backing: Backing::Owned(buf),
        })
    }

    /// Whether this view is a live page mapping (vs an owned copy).
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { .. } => true,
            Backing::Owned(_) => false,
        }
    }

    /// The file contents.
    pub fn as_slice(&self) -> &[u8] {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { ptr, len } => {
                // SAFETY: (ptr, len) is a live PROT_READ mapping owned by
                // self; unmapped only on drop, so the slice's lifetime
                // (tied to &self) cannot outlive the pages.
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
            Backing::Owned(v) => v,
        }
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// `true` for an empty file.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { ptr, len } => sys::unmap(*ptr, *len),
            Backing::Owned(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("xfraud-mmap-test-{name}-{}", contents.len()));
        let mut f = File::create(&path).unwrap();
        f.write_all(contents).unwrap();
        f.sync_all().unwrap();
        path
    }

    #[test]
    fn mapped_view_reads_file_bytes() {
        let path = temp_file("mapped", b"hello mapped world");
        let mut f = File::open(&path).unwrap();
        let m = Mmap::open(&mut f, true).unwrap();
        assert_eq!(m.as_slice(), b"hello mapped world");
        #[cfg(unix)]
        assert!(m.is_mapped());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn owned_fallback_reads_file_bytes() {
        let path = temp_file("owned", b"fallback contents");
        let mut f = File::open(&path).unwrap();
        let m = Mmap::open(&mut f, false).unwrap();
        assert_eq!(m.as_slice(), b"fallback contents");
        assert!(!m.is_mapped());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = temp_file("empty", b"");
        let mut f = File::open(&path).unwrap();
        let m = Mmap::open(&mut f, true).unwrap();
        assert!(m.is_empty());
        assert_eq!(m.as_slice(), b"");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mapping_survives_unlink_of_the_file() {
        let path = temp_file("unlinked", b"still readable after unlink");
        let mut f = File::open(&path).unwrap();
        let m = Mmap::open(&mut f, true).unwrap();
        drop(f);
        std::fs::remove_file(&path).unwrap();
        // The inode lives until the last unmap (safety argument, point 2).
        assert_eq!(m.as_slice(), b"still readable after unlink");
    }
}
