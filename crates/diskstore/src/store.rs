//! [`DiskStore`]: an LSM-lite persistent KV store.
//!
//! Writes land in an in-memory memtable and, first, in a write-ahead log
//! (the same unchecked frame format the `ingest` WAL uses, via
//! [`xfraud_kvstore::framing`]); once the memtable passes its size budget
//! it is frozen and built into an immutable sorted [`Segment`]
//! (write-temp → fsync → rename → fsync dir). Reads consult the active
//! memtable, then the frozen one, then segments newest-first — and segment
//! reads are zero-copy slices out of mapped pages, the multi-reader profile
//! of the paper's Fig. 13. Compaction merges all segments (newest value
//! wins) into one, whose bytes are identical to a from-scratch build of the
//! live map — pinned by proptest.
//!
//! # Lock hierarchy (acquisition order)
//!
//! `flush_lock → wal → inner`. `put` takes `wal` then `inner` and holds the
//! WAL lock across the memtable insert, so a concurrent rotation can never
//! observe a record in the memtable that its epoch's WAL does not cover
//! (the durability invariant crash recovery relies on). Segment building
//! happens with **no** locks held — only the frozen memtable `Arc` — so
//! readers and writers proceed during a flush; `flush_lock` serialises
//! flush/compact against each other only.
//!
//! # Crash windows
//!
//! * During a segment build: the frozen records are still covered by the
//!   previous-epoch WAL (deleted only after the rename lands), and partial
//!   builds live in `.tmp` files removed on open.
//! * After rename, before WAL delete: replaying the old WAL re-inserts
//!   values identical to the segment's — idempotent.
//! * Mid-WAL-append: the torn tail frame is dropped on replay, exactly the
//!   `ingest` WAL semantics.
//!
//! [`DiskStore::open`] runs recovery: remove `.tmp`, drop segments that
//! fail structural validation, replay WALs in epoch order (truncating torn
//! tails), flush the replayed memtable to a fresh segment, and only then
//! delete the replayed WAL files.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::iter::Peekable;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use xfraud_kvstore::framing;
use xfraud_kvstore::KvStore;

use crate::error::StoreError;
use crate::segment::{Segment, SegmentBuilder};

/// Tuning knobs of a [`DiskStore`].
#[derive(Debug, Clone)]
pub struct DiskStoreOptions {
    /// Soft block size inside segments. Part of the on-disk image: flush
    /// and compaction must agree on it for bit-identity.
    pub block_bytes: usize,
    /// Memtable size budget; exceeding it triggers a flush on the writing
    /// thread (write backpressure, bounded memory).
    pub memtable_bytes: usize,
    /// Flush-time segment-count threshold that triggers a compaction.
    pub compact_at_segments: usize,
    /// Serve segment reads from mapped pages (`true`) or owned buffers.
    pub prefer_mmap: bool,
}

impl Default for DiskStoreOptions {
    fn default() -> Self {
        DiskStoreOptions {
            block_bytes: 4096,
            memtable_bytes: 4 << 20,
            compact_at_segments: 6,
            prefer_mmap: true,
        }
    }
}

/// What [`DiskStore::open`] found and repaired.
#[derive(Debug, Default, Clone)]
pub struct RecoveryStats {
    /// Records re-inserted from WAL files.
    pub replayed_records: u64,
    /// WAL bytes dropped as torn tails.
    pub torn_bytes: u64,
    /// Abandoned `.tmp` segment builds removed.
    pub removed_tmp: usize,
    /// Segment files that failed structural validation and were left on
    /// disk but excluded from the live set.
    pub dropped_segments: usize,
    /// Segments serving reads after recovery.
    pub segments_open: usize,
}

/// A point-in-time sizing of the store.
#[derive(Debug, Clone, Default)]
pub struct StorageStats {
    pub n_segments: usize,
    pub segment_bytes: u64,
    pub segment_records: u64,
    pub memtable_records: usize,
    pub memtable_bytes: usize,
    pub wal_bytes: u64,
    pub wal_epoch: u64,
    /// Whether segment reads go through mapped pages.
    pub mmap_active: bool,
}

/// The out-of-core storage contract: everything a [`KvStore`] does, plus
/// explicit control over persistence (flush, compaction, durability) and
/// whole-store scans.
pub trait BlockStore: KvStore {
    /// Freezes the memtable and writes it out as a segment.
    fn flush(&self) -> Result<(), StoreError>;
    /// Merges all segments into one (newest value wins).
    fn compact(&self) -> Result<(), StoreError>;
    /// Forces WAL bytes to stable storage (`fsync`).
    fn sync(&self) -> Result<(), StoreError>;
    /// Current sizes of every tier.
    fn storage_stats(&self) -> StorageStats;
    /// Visits every live record in ascending key order.
    fn scan(&self, f: &mut dyn FnMut(&[u8], &[u8]));
}

struct WalState {
    file: File,
    path: PathBuf,
    epoch: u64,
    bytes: u64,
}

type Memtable = BTreeMap<Vec<u8>, Bytes>;

/// `(active, frozen, segments)` read tiers, newest-precedence first.
type ReadTiers = (Memtable, Option<Arc<Memtable>>, Arc<Vec<Arc<Segment>>>);

/// One sorted `(key, value)` source feeding the k-way scan merge.
type ScanSource<'a> = Box<dyn Iterator<Item = (&'a [u8], &'a [u8])> + 'a>;

struct Inner {
    active: Memtable,
    active_bytes: usize,
    /// Memtable currently being built into a segment: still serving reads,
    /// still covered by the previous-epoch WAL.
    frozen: Option<Arc<Memtable>>,
    /// Oldest → newest. Swapped wholesale (behind an `Arc`) so readers can
    /// drop the lock before touching segment bytes.
    segments: Arc<Vec<Arc<Segment>>>,
}

/// See the module docs for design; see [`BlockStore`] for the API.
pub struct DiskStore {
    dir: PathBuf,
    opts: DiskStoreOptions,
    /// Serialises flush/compact; held across segment builds (which take no
    /// other lock).
    flush_lock: Mutex<()>,
    wal: Mutex<WalState>,
    inner: RwLock<Inner>,
    next_seg_id: AtomicU64,
    contended: AtomicU64,
    /// Reads that hit a CRC-failed record in a sealed segment. The lookup
    /// falls through to older tiers (a corrupt newer record must not shadow
    /// an intact older one), but the corruption is counted, never silent.
    corrupt_reads: AtomicU64,
    recovery: RecoveryStats,
}

fn wal_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("wal-{epoch:06}.log"))
}

fn seg_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("seg-{id:08}.seg"))
}

fn sync_dir(dir: &Path) -> Result<(), StoreError> {
    File::open(dir)?.sync_all()?;
    Ok(())
}

/// Parses `prefix-NNN.suffix` file names produced by this store.
fn parse_numbered(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

impl DiskStore {
    /// Opens (creating if absent) a store rooted at `dir`, running crash
    /// recovery first. See the module docs for the recovery protocol.
    pub fn open(dir: impl Into<PathBuf>, opts: DiskStoreOptions) -> Result<DiskStore, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut stats = RecoveryStats::default();

        // Inventory the directory deterministically.
        let mut names: Vec<String> = fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .collect();
        names.sort();

        // 1. Abandoned segment builds never became visible: remove.
        for name in &names {
            if name.ends_with(".tmp") {
                fs::remove_file(dir.join(name))?;
                stats.removed_tmp += 1;
            }
        }

        // 2. Open segments oldest → newest; drop any that fail validation.
        let mut segments: Vec<Arc<Segment>> = Vec::new();
        let mut max_seg_id = 0u64;
        for name in &names {
            let Some(id) = parse_numbered(name, "seg-", ".seg") else {
                continue;
            };
            max_seg_id = max_seg_id.max(id);
            match Segment::open(&dir.join(name), opts.prefer_mmap) {
                Ok(seg) => segments.push(Arc::new(seg)),
                Err(_) => stats.dropped_segments += 1,
            }
        }

        // 3. Replay WALs in epoch order, dropping torn tails.
        let mut replayed: Memtable = BTreeMap::new();
        let mut replayed_bytes = 0usize;
        let mut wal_files: Vec<(u64, PathBuf)> = names
            .iter()
            .filter_map(|n| Some((parse_numbered(n, "wal-", ".log")?, dir.join(n))))
            .collect();
        wal_files.sort();
        let mut max_epoch = 0u64;
        for (epoch, path) in &wal_files {
            max_epoch = max_epoch.max(*epoch);
            let buf = fs::read(path)?;
            let mut frames = framing::FrameIter::new(&buf);
            for (k, v) in frames.by_ref() {
                replayed_bytes += k.len() + v.len();
                replayed.insert(k.to_vec(), Bytes::copy_from_slice(v));
                stats.replayed_records += 1;
            }
            stats.torn_bytes += buf.len() as u64 - frames.scanned();
        }

        let store = DiskStore {
            flush_lock: Mutex::new(()),
            wal: Mutex::new(WalState {
                file: OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(wal_path(&dir, max_epoch + 1))?,
                path: wal_path(&dir, max_epoch + 1),
                epoch: max_epoch + 1,
                bytes: 0,
            }),
            inner: RwLock::new(Inner {
                active: replayed,
                active_bytes: replayed_bytes,
                frozen: None,
                segments: Arc::new(segments),
            }),
            next_seg_id: AtomicU64::new(max_seg_id + 1),
            contended: AtomicU64::new(0),
            corrupt_reads: AtomicU64::new(0),
            recovery: stats,
            opts,
            dir,
        };

        // 4. Persist the replayed memtable as a segment, then (and only
        //    then) retire the WAL files it came from. A crash inside this
        //    flush leaves the old WALs in place — recovery just reruns.
        store.flush()?;
        for (_, path) in &wal_files {
            fs::remove_file(path)?;
        }
        if !wal_files.is_empty() {
            sync_dir(&store.dir)?;
        }
        let mut store = store;
        store.recovery.segments_open = store.inner.read().segments.len();
        Ok(store)
    }

    /// What [`DiskStore::open`] found and repaired.
    pub fn recovery_stats(&self) -> &RecoveryStats {
        &self.recovery
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Fallible write: appends to the WAL, inserts into the memtable, and
    /// flushes (on this thread) if the memtable is over budget.
    pub fn try_put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        // Encode outside the locks.
        let mut frame = Vec::with_capacity(framing::encoded_len(key.len(), value.len()));
        framing::encode_into(key, value, &mut frame);
        let value = Bytes::copy_from_slice(value);
        let key = key.to_vec();

        let need_flush = {
            let mut wal = match self.wal.try_lock() {
                Some(g) => g,
                None => {
                    self.contended.fetch_add(1, Ordering::Relaxed);
                    self.wal.lock()
                }
            };
            wal.file.write_all(&frame)?;
            wal.bytes += frame.len() as u64;
            // Holding `wal` across the insert: rotation (which also takes
            // `wal` then `inner`) can never freeze a memtable containing a
            // record its epoch's WAL has not fully recorded.
            let mut inner = self.inner.write();
            inner.active_bytes += key.len() + value.len();
            inner.active.insert(key, value);
            inner.active_bytes >= self.opts.memtable_bytes
        };
        if need_flush {
            self.flush()?;
        }
        Ok(())
    }

    /// Zero-copy read: calls `f` with the stored value (borrowed from the
    /// memtable entry or straight from mapped segment pages). No lock is
    /// held while `f` runs. Returns whether the key was found.
    pub fn try_get_with(&self, key: &[u8], f: &mut dyn FnMut(&[u8])) -> bool {
        // Snapshot the tiers under the read lock, release, then search.
        let (hit, frozen, segments) = {
            let inner = match self.inner.try_read() {
                Some(g) => g,
                None => {
                    self.contended.fetch_add(1, Ordering::Relaxed);
                    self.inner.read()
                }
            };
            match inner.active.get(key) {
                Some(v) => (Some(v.clone()), None, None),
                None => (
                    None,
                    inner.frozen.clone(),
                    Some(Arc::clone(&inner.segments)),
                ),
            }
        };
        if let Some(v) = hit {
            f(&v);
            return true;
        }
        if let Some(frozen) = frozen {
            if let Some(v) = frozen.get(key) {
                f(v);
                return true;
            }
        }
        if let Some(segments) = segments {
            for seg in segments.iter().rev() {
                match seg.get(key) {
                    Ok(Some(v)) => {
                        f(v);
                        return true;
                    }
                    Ok(None) => {}
                    // Count the corrupt record and keep searching older
                    // segments — `verify` reports the damage with its path.
                    Err(_) => {
                        self.corrupt_reads.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        false
    }

    /// Number of reads that encountered a CRC-failed record so far.
    pub fn corrupt_read_count(&self) -> u64 {
        self.corrupt_reads.load(Ordering::Relaxed)
    }

    /// Snapshot of the read tiers, newest-precedence first.
    fn tiers(&self) -> ReadTiers {
        let inner = self.inner.read();
        (
            inner.active.clone(),
            inner.frozen.clone(),
            Arc::clone(&inner.segments),
        )
    }

    /// Writes `image` as segment `id`: temp file → fsync → rename → fsync
    /// dir. Only after the rename is the segment reachable by recovery.
    fn persist_segment(&self, id: u64, image: &[u8]) -> Result<Arc<Segment>, StoreError> {
        let tmp = self.dir.join(format!("seg-{id:08}.tmp"));
        let path = seg_path(&self.dir, id);
        let mut f = File::create(&tmp)?;
        f.write_all(image)?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, &path)?;
        sync_dir(&self.dir)?;
        Ok(Arc::new(Segment::open(&path, self.opts.prefer_mmap)?))
    }

    /// Compacts while already holding `flush_lock`.
    fn compact_locked(&self) -> Result<(), StoreError> {
        let segments = Arc::clone(&self.inner.read().segments);
        if segments.len() < 2 {
            return Ok(());
        }
        // Newest-precedence-first source list for the merge. A corrupt
        // record aborts the compaction (the old segments would be deleted
        // afterwards — rewriting them minus silently dropped records must
        // never happen); the first frame error is carried out through the
        // cell since the merge callback itself is infallible.
        let frame_err: std::cell::RefCell<Option<StoreError>> = std::cell::RefCell::new(None);
        let sources: Vec<_> = segments
            .iter()
            .rev()
            .map(|s| {
                s.iter().map_while(|rec| match rec {
                    Ok(kv) => Some(kv),
                    Err(e) => {
                        frame_err.borrow_mut().get_or_insert(e);
                        None
                    }
                })
            })
            .collect();
        let mut builder = SegmentBuilder::new(self.opts.block_bytes);
        let mut failed = None;
        merge_sorted(sources, &mut |k, v| {
            if failed.is_none() {
                if let Err(e) = builder.add(k, v) {
                    failed = Some(e);
                }
            }
        });
        if let Some(e) = frame_err.into_inner() {
            return Err(e);
        }
        if let Some(e) = failed {
            return Err(e);
        }
        let id = self.next_seg_id.fetch_add(1, Ordering::Relaxed);
        let merged = self.persist_segment(id, &builder.finish())?;
        {
            let mut inner = self.inner.write();
            inner.segments = Arc::new(vec![merged]);
        }
        // Old segments are shadowed by the merged one (it is newest and a
        // superset), so a crash between rename and these deletes recovers
        // to the same live set.
        for seg in segments.iter() {
            fs::remove_file(seg.path())?;
        }
        sync_dir(&self.dir)?;
        Ok(())
    }
}

impl BlockStore for DiskStore {
    fn flush(&self) -> Result<(), StoreError> {
        let _flush = self.flush_lock.lock();

        // Rotate the WAL and freeze the memtable in one critical section
        // (wal → inner), so every frozen record is covered by the old WAL.
        let (old_wal_path, frozen) = {
            let mut wal = self.wal.lock();
            let mut inner = self.inner.write();
            if inner.active.is_empty() {
                return Ok(());
            }
            let new_epoch = wal.epoch + 1;
            let new_path = wal_path(&self.dir, new_epoch);
            let new_file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&new_path)?;
            wal.file.sync_all()?;
            let old_path = std::mem::replace(&mut wal.path, new_path);
            wal.file = new_file;
            wal.epoch = new_epoch;
            wal.bytes = 0;
            let map = Arc::new(std::mem::take(&mut inner.active));
            inner.active_bytes = 0;
            inner.frozen = Some(Arc::clone(&map));
            (old_path, map)
        };

        // Build the segment with no locks held: readers see the frozen
        // tier, writers fill the fresh active memtable + new-epoch WAL.
        let mut builder = SegmentBuilder::new(self.opts.block_bytes);
        for (k, v) in frozen.iter() {
            builder.add(k, v)?;
        }
        let id = self.next_seg_id.fetch_add(1, Ordering::Relaxed);
        let seg = self.persist_segment(id, &builder.finish())?;

        let n_segments = {
            let mut inner = self.inner.write();
            let mut segs: Vec<Arc<Segment>> = (*inner.segments).clone();
            segs.push(seg);
            inner.segments = Arc::new(segs);
            inner.frozen = None;
            inner.segments.len()
        };
        // The segment now covers the frozen records; the old WAL is dead.
        fs::remove_file(&old_wal_path)?;
        sync_dir(&self.dir)?;

        if n_segments >= self.opts.compact_at_segments {
            self.compact_locked()?;
        }
        Ok(())
    }

    fn compact(&self) -> Result<(), StoreError> {
        let _flush = self.flush_lock.lock();
        self.compact_locked()
    }

    fn sync(&self) -> Result<(), StoreError> {
        self.wal.lock().file.sync_all()?;
        Ok(())
    }

    fn storage_stats(&self) -> StorageStats {
        let (wal_bytes, wal_epoch) = {
            let wal = self.wal.lock();
            (wal.bytes, wal.epoch)
        };
        let inner = self.inner.read();
        StorageStats {
            n_segments: inner.segments.len(),
            segment_bytes: inner.segments.iter().map(|s| s.file_bytes() as u64).sum(),
            segment_records: inner.segments.iter().map(|s| s.n_records()).sum(),
            memtable_records: inner.active.len() + inner.frozen.as_ref().map_or(0, |f| f.len()),
            memtable_bytes: inner.active_bytes,
            wal_bytes,
            wal_epoch,
            mmap_active: inner.segments.iter().all(|s| s.is_mapped()),
        }
    }

    fn scan(&self, f: &mut dyn FnMut(&[u8], &[u8])) {
        let (active, frozen, segments) = self.tiers();
        let mut sources: Vec<ScanSource<'_>> = Vec::new();
        sources.push(Box::new(
            active.iter().map(|(k, v)| (k.as_slice(), v.as_ref())),
        ));
        if let Some(fr) = &frozen {
            sources.push(Box::new(fr.iter().map(|(k, v)| (k.as_slice(), v.as_ref()))));
        }
        for seg in segments.iter().rev() {
            // `scan` is infallible by contract: a corrupt record ends that
            // segment's contribution and is counted, like the point-read
            // path; `verify` reports the damage with its path.
            sources.push(Box::new(seg.iter().map_while(|rec| match rec {
                Ok(kv) => Some(kv),
                Err(_) => {
                    self.corrupt_reads.fetch_add(1, Ordering::Relaxed);
                    None
                }
            })));
        }
        merge_sorted(sources, f);
    }
}

/// K-way merge of sorted `(key, value)` iterators. `sources` are ordered by
/// precedence (highest first): when several sources carry the same key, the
/// highest-precedence value is emitted and the rest are skipped.
fn merge_sorted<'a, I>(sources: Vec<I>, f: &mut dyn FnMut(&[u8], &[u8]))
where
    I: Iterator<Item = (&'a [u8], &'a [u8])> + 'a,
{
    let mut iters: Vec<Peekable<I>> = sources.into_iter().map(|s| s.peekable()).collect();
    loop {
        // Smallest key across all sources…
        let mut min_key: Option<&[u8]> = None;
        for it in iters.iter_mut() {
            if let Some((k, _)) = it.peek() {
                if min_key.is_none_or(|m| *k < m) {
                    min_key = Some(k);
                }
            }
        }
        let Some(min) = min_key else {
            return;
        };
        let min = min.to_vec(); // detach from the peeked borrow
                                // …emitted from the first (highest-precedence) source holding it.
        let mut emitted = false;
        for it in iters.iter_mut() {
            if it.peek().is_some_and(|(k, _)| *k == min.as_slice()) {
                // xlint: allow(p1, reason = "peek() just confirmed the item exists; next() cannot return None")
                let (k, v) = it.next().expect("peeked item");
                if !emitted {
                    f(k, v);
                    emitted = true;
                }
            }
        }
    }
}

impl KvStore for DiskStore {
    fn put(&self, key: &[u8], value: &[u8]) {
        self.try_put(key, value)
            // xlint: allow(p1, reason = "KvStore::put is infallible by contract; disk failure under a benchmark/training store is fatal, matching LogStore")
            .expect("diskstore write failed");
    }

    fn get(&self, key: &[u8]) -> Option<Bytes> {
        let mut out = None;
        self.try_get_with(key, &mut |v| out = Some(Bytes::copy_from_slice(v)));
        out
    }

    fn get_with(&self, key: &[u8], f: &mut dyn FnMut(&[u8])) -> bool {
        self.try_get_with(key, f)
    }

    fn len(&self) -> usize {
        let mut n = 0usize;
        self.scan(&mut |_, _| n += 1);
        n
    }

    fn store_name(&self) -> &'static str {
        "diskstore"
    }

    fn contended_ops(&self) -> u64 {
        self.contended.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("xfraud-diskstore-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn small_opts() -> DiskStoreOptions {
        DiskStoreOptions {
            block_bytes: 256,
            memtable_bytes: 1 << 10, // 1 KiB: force frequent flushes
            compact_at_segments: 4,
            prefer_mmap: true,
        }
    }

    fn key(i: u64) -> [u8; 8] {
        i.to_be_bytes()
    }

    #[test]
    fn roundtrip_through_flushes_and_reopen() {
        let dir = temp_dir("roundtrip");
        {
            let store = DiskStore::open(&dir, small_opts()).unwrap();
            for i in 0..500u64 {
                store.put(&key(i), format!("value-{i}").as_bytes());
            }
            // Overwrites must shadow older segment records.
            for i in 0..100u64 {
                store.put(&key(i), format!("updated-{i}").as_bytes());
            }
            assert_eq!(store.len(), 500);
            for i in 0..500u64 {
                let want = if i < 100 {
                    format!("updated-{i}")
                } else {
                    format!("value-{i}")
                };
                assert_eq!(
                    store.get(&key(i)).as_deref(),
                    Some(want.as_bytes()),
                    "i={i}"
                );
            }
            assert_eq!(store.get(b"missing"), None);
        }
        // Reopen: everything must come back from disk.
        let store = DiskStore::open(&dir, small_opts()).unwrap();
        assert_eq!(store.len(), 500);
        for i in [0u64, 50, 99, 100, 250, 499] {
            let want = if i < 100 {
                format!("updated-{i}")
            } else {
                format!("value-{i}")
            };
            assert_eq!(store.get(&key(i)).as_deref(), Some(want.as_bytes()));
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_yields_sorted_newest_wins() {
        let dir = temp_dir("scan");
        let store = DiskStore::open(&dir, small_opts()).unwrap();
        for i in (0..200u64).rev() {
            store.put(&key(i), b"old");
        }
        store.flush().unwrap();
        for i in 0..50u64 {
            store.put(&key(i * 4), b"new");
        }
        let mut seen = Vec::new();
        store.scan(&mut |k, v| seen.push((k.to_vec(), v.to_vec())));
        assert_eq!(seen.len(), 200);
        for (i, (k, v)) in seen.iter().enumerate() {
            assert_eq!(k.as_slice(), &key(i as u64));
            let want: &[u8] = if i % 4 == 0 && i < 200 {
                b"new"
            } else {
                b"old"
            };
            assert_eq!(v.as_slice(), want, "key {i}");
        }
        assert!(seen.windows(2).all(|w| w[0].0 < w[1].0));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_preserves_reads_and_collapses_segments() {
        let dir = temp_dir("compact");
        let mut opts = small_opts();
        opts.compact_at_segments = 100; // manual compaction only
        let store = DiskStore::open(&dir, opts).unwrap();
        for round in 0..5u64 {
            for i in 0..120u64 {
                store.put(&key(i), format!("r{round}-{i}").as_bytes());
            }
            store.flush().unwrap();
        }
        assert!(store.storage_stats().n_segments >= 5);
        store.compact().unwrap();
        let stats = store.storage_stats();
        assert_eq!(stats.n_segments, 1);
        assert_eq!(store.len(), 120);
        for i in 0..120u64 {
            assert_eq!(
                store.get(&key(i)).as_deref(),
                Some(format!("r4-{i}").as_bytes())
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zero_copy_get_with_reads_mapped_pages() {
        let dir = temp_dir("getwith");
        let store = DiskStore::open(&dir, small_opts()).unwrap();
        for i in 0..300u64 {
            store.put(&key(i), &i.to_le_bytes());
        }
        store.flush().unwrap();
        assert!(store.storage_stats().mmap_active);
        let mut seen = 0u64;
        assert!(store.get_with(&key(123), &mut |v| {
            seen = u64::from_le_bytes(v.try_into().unwrap());
        }));
        assert_eq!(seen, 123);
        assert!(!store.get_with(b"absent", &mut |_| unreachable!()));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_readers_and_writer() {
        let dir = temp_dir("concurrent");
        let store = Arc::new(DiskStore::open(&dir, small_opts()).unwrap());
        for i in 0..400u64 {
            store.put(&key(i), &i.to_le_bytes());
        }
        crossbeam::scope(|scope| {
            for t in 0..3 {
                let store = Arc::clone(&store);
                scope.spawn(move |_| {
                    for pass in 0..5 {
                        for i in 0..400u64 {
                            let got = store.get(&key(i)).unwrap();
                            assert_eq!(&got[..8], &i.to_le_bytes(), "t{t} pass{pass}");
                        }
                    }
                });
            }
            let store = Arc::clone(&store);
            scope.spawn(move |_| {
                for i in 400..900u64 {
                    store.put(&key(i), &i.to_le_bytes());
                }
            });
        })
        .unwrap();
        assert_eq!(store.len(), 900);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_after_unflushed_writes_replays_wal() {
        let dir = temp_dir("replay");
        {
            let mut opts = small_opts();
            opts.memtable_bytes = 1 << 30; // never auto-flush
            let store = DiskStore::open(&dir, opts).unwrap();
            for i in 0..50u64 {
                store.put(&key(i), b"wal-only");
            }
            store.sync().unwrap();
            // Dropped without flush: records exist only in the WAL.
        }
        let store = DiskStore::open(&dir, small_opts()).unwrap();
        assert_eq!(store.recovery_stats().replayed_records, 50);
        assert_eq!(store.len(), 50);
        for i in 0..50u64 {
            assert_eq!(store.get(&key(i)).as_deref(), Some(&b"wal-only"[..]));
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
