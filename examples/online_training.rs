//! Online model maintenance (Appendix H.5): keep the detector current by
//! fine-tuning on each new time window, and watch it track drifting fraud
//! behaviour (stolen-card bursts, rings that turn bad months after their
//! cultivation phase).
//!
//! Run: `cargo run --release -p xfraud-examples --bin online_training`

use xfraud::datagen::{Dataset, DatasetPreset};
use xfraud::gnn::{
    incremental_study, time_windows, DetectorConfig, IncrementalConfig, SageSampler, XFraudDetector,
};

fn main() {
    let ds = Dataset::generate(DatasetPreset::EbaySmallSim, 7);
    let g = &ds.graph;
    let cfg = IncrementalConfig::default();
    println!(
        "timeline ({} windows over the observation period):",
        cfg.n_windows
    );
    for (w, win) in time_windows(g, &ds.node_time, cfg.n_windows)
        .iter()
        .enumerate()
    {
        let fraud = win.iter().filter(|&&v| g.label(v) == Some(true)).count();
        println!(
            "  window {w}: {:>5} labelled txns, {:>5.2}% fraud",
            win.len(),
            100.0 * fraud as f64 / win.len().max(1) as f64
        );
    }

    let fd = g.feature_dim();
    let sampler = SageSampler::new(2, 8);
    println!("\ntraining static arm on window 0, then streaming windows 1.. :");
    let reports = incremental_study(
        g,
        &ds.node_time,
        &sampler,
        || XFraudDetector::new(DetectorConfig::small(fd, 1)),
        &cfg,
    );
    for r in &reports {
        println!(
            "window {}: static AUC {:.4} | incremental AUC {:.4} ({:+.4})",
            r.window,
            r.auc_static,
            r.auc_incremental,
            r.auc_incremental - r.auc_static
        );
    }
    println!("\nThe incremental arm sees each window only *after* being scored on it, so");
    println!("the comparison is leakage-free — the paper's evaluate-then-train cadence.");
}
