//! Online scoring: freeze a trained detector behind the serving engine and
//! run the operational lifecycle a production deployment goes through.
//!
//! 1. Train the detector+ (one `Pipeline::run`).
//! 2. Freeze it behind a `ScoringEngine`: micro-batching, duplicate-id
//!    coalescing, subgraph + score caches.
//! 3. Score from several concurrent caller threads and verify the answers
//!    are bit-identical to the sequential `score_transaction` contract.
//! 4. Walk the incremental-update hooks: swap in retrained weights (score
//!    cache drops, sampled subgraphs survive), invalidate one transaction,
//!    and bump the graph version.
//!
//! Run: `cargo run --release -p xfraud-examples --bin online_scoring`

use xfraud::gnn::{DetectorConfig, XFraudDetector};
use xfraud::hetgraph::NodeId;
use xfraud::{Pipeline, PipelineConfig};

fn main() -> Result<(), xfraud::Error> {
    println!("training xFraud detector+ ...");
    let cfg = PipelineConfig::builder().epochs(4).build()?;
    let pipeline = Pipeline::run(cfg)?;

    // 2: the engine serves a clone of the frozen detector over the graph.
    let engine = pipeline.serving_engine().max_batch(16).build()?;
    let hot: Vec<NodeId> = pipeline.test_nodes.iter().copied().take(16).collect();

    // 3: four callers, overlapping id streams — requests coalesce into
    // micro-batches and duplicates are scored once per batch.
    std::thread::scope(|scope| {
        for caller in 0..4usize {
            let engine = &engine;
            let hot = &hot;
            scope.spawn(move || {
                let ids: Vec<NodeId> = hot
                    .iter()
                    .cycle()
                    .skip(caller * 2)
                    .take(8)
                    .copied()
                    .collect();
                let scores = engine.score(&ids).expect("valid transactions");
                println!(
                    "caller {caller}: scored {} txns, first = {:.4}",
                    scores.len(),
                    scores[0]
                );
            });
        }
    });
    let sequential = pipeline.score_transaction(hot[0])?;
    assert_eq!(engine.score(&[hot[0]])?[0], sequential);
    println!("engine matches sequential score_transaction bit-for-bit");

    // 4: the incremental lifecycle.
    let retrained = XFraudDetector::new(DetectorConfig::small(
        pipeline.dataset.graph.feature_dim(),
        99, // a different init stands in for this week's fine-tune
    ));
    engine.swap_detector(retrained)?;
    println!(
        "after weight swap: {} cached subgraphs survive, score cache empty",
        engine.metrics().subgraph_entries
    );
    engine.score(&hot)?; // re-scored under the new weights, cached samples reused

    engine.invalidate_transaction(hot[0]);
    let version = engine.bump_graph_version();
    println!("graph snapshot advanced to version {version}; caches dropped");
    engine.score(&hot)?;

    println!("\n{}", engine.metrics());
    Ok(())
}
