//! Quickstart: the whole xFraud pipeline in ~40 lines.
//!
//! 1. Generate a synthetic transaction world (the eBay-small analogue).
//! 2. Train the xFraud detector+ (heterogeneous GNN + GraphSAGE sampler).
//! 3. Score held-out transactions and report AUC / AP / accuracy.
//! 4. Explain one flagged transaction with the GNNExplainer.
//!
//! Run: `cargo run --release -p xfraud-examples --bin quickstart`

use xfraud::explain::{ExplainerConfig, GnnExplainer};
use xfraud::{Pipeline, PipelineConfig};

fn main() -> Result<(), xfraud::Error> {
    // 1 + 2: dataset, split and training are one call; the builder
    // validates the settings before anything expensive runs.
    println!("training xFraud detector+ on ebay-small-sim ...");
    let cfg = PipelineConfig::builder().epochs(6).build()?;
    let pipeline = Pipeline::run(cfg)?;
    for e in &pipeline.history {
        println!(
            "  epoch {:>2}  loss {:.4}  val AUC {:.4}  ({:.1}s)",
            e.epoch, e.mean_loss, e.val_auc, e.secs
        );
    }

    // 3: held-out metrics.
    let (auc, ap, acc) = pipeline.test_metrics();
    println!("\ntest AUC = {auc:.4}   AP = {ap:.4}   accuracy@0.5 = {acc:.4}");

    // 4: explain the highest-scoring held-out fraud.
    let (scores, labels) = pipeline.test_scores();
    let (best_idx, best_score) = scores
        .iter()
        .enumerate()
        .filter(|&(i, _)| labels[i])
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .expect("some fraud in the test set");
    let txn = pipeline.test_nodes[best_idx];
    println!("\nexplaining transaction {txn} (fraud score {best_score:.3}) ...");

    let community = xfraud::hetgraph::community_of(&pipeline.dataset.graph, txn, 400)?;
    let explainer = GnnExplainer::new(&pipeline.detector, ExplainerConfig::default());
    let (explanation, weights) = explainer.explain_community(&community);

    println!(
        "community: {} nodes, {} links; detector says {} (p = {:.3})",
        community.n_nodes(),
        community.n_links(),
        if explanation.predicted_label == 1 {
            "FRAUD"
        } else {
            "legit"
        },
        explanation.predicted_score
    );
    // Top-5 most influential edges.
    let links = community.graph.undirected_links();
    let mut ranked: Vec<(usize, f64)> = weights.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("top influential edges:");
    for &(i, w) in ranked.iter().take(5) {
        let (u, v) = links[i];
        println!(
            "  {} {} -- {} {}   weight {:.3}",
            community.graph.node_type(u),
            u,
            community.graph.node_type(v),
            v,
            w
        );
    }
    Ok(())
}
