//! Case study: a cultivated fraud ring (§5.2 / Appendix G).
//!
//! Builds a world with a prominent ring — accounts that execute a few
//! "cultivation" purchases before bursting — trains the detector, and shows
//! how (a) the detector scores ring vs background transactions and (b) the
//! explainer surfaces the shared ring entities as the load-bearing edges.
//!
//! Run: `cargo run --release -p xfraud-examples --bin fraud_ring`

use xfraud::datagen::{build_dataset, generate_log, FraudMechanism, WorldConfig};
use xfraud::explain::{ExplainerConfig, GnnExplainer};
use xfraud::gnn::{
    predict_scores, train_test_split, DetectorConfig, SageSampler, TrainConfig, Trainer,
    XFraudDetector,
};
use xfraud::hetgraph::{community_of, NodeType};
use xfraud::metrics::roc_auc;

fn main() {
    // A world where rings dominate the fraud mix.
    let cfg = WorldConfig {
        n_rings: 6,
        ring_size: 5,
        ring_cultivation: 3,
        ring_burst: 4,
        n_stolen_card_incidents: 2,
        n_warehouses: 1,
        n_guest_frauds: 4,
        seed: 21,
        ..WorldConfig::default()
    };
    let world = generate_log(&cfg);
    let ring_txns = world
        .records
        .iter()
        .filter(|r| r.mechanism == FraudMechanism::Ring)
        .count();
    println!(
        "world: {} transactions, {} of them ring frauds",
        world.records.len(),
        ring_txns
    );
    let ds = build_dataset(&world, &cfg);
    let g = &ds.graph;

    // Train detector+.
    let (train, test) = train_test_split(g, 0.3, 1);
    let mut det = XFraudDetector::new(DetectorConfig::small(g.feature_dim(), 2));
    let sampler = SageSampler::new(2, 8);
    let trainer = Trainer::new(TrainConfig {
        epochs: 6,
        ..TrainConfig::default()
    });
    trainer.fit(&mut det, g, &sampler, &train, &test);
    let (scores, labels) = trainer.evaluate(&det, g, &sampler, &test, 3);
    println!("test AUC = {:.4}", roc_auc(&scores, &labels));

    // Pick the fraud seed whose community looks most ring-like: several
    // buyers (complex community) and several fraud transactions.
    let ring_seed = g
        .labeled_txns()
        .into_iter()
        .filter(|&(_, y)| y)
        .max_by_key(|&(v, _)| {
            let c = community_of(g, v, 400).unwrap();
            let buyers = (0..c.graph.n_nodes())
                .filter(|&u| c.graph.node_type(u) == NodeType::Buyer)
                .count();
            let frauds = c.graph.labeled_txns().iter().filter(|&&(_, y)| y).count();
            if buyers >= 3 {
                frauds * 10 + buyers
            } else {
                0
            }
        })
        .map(|(v, _)| v)
        .expect("a ring community exists");
    let community = community_of(g, ring_seed, 400).unwrap();
    println!(
        "\nring community around txn {ring_seed}: {} nodes / {} links, {} buyers",
        community.n_nodes(),
        community.n_links(),
        (0..community.graph.n_nodes())
            .filter(|&u| community.graph.node_type(u) == NodeType::Buyer)
            .count()
    );

    // Detector scores across the community's transactions.
    let nodes: Vec<usize> = (0..community.graph.n_nodes()).collect();
    let txns: Vec<usize> = community
        .graph
        .txn_nodes()
        .iter()
        .copied()
        .filter(|&v| community.graph.label(v).is_some())
        .collect();
    let batch = xfraud::gnn::SubgraphBatch::from_nodes(&community.graph, &nodes, &txns);
    let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(3);
    let s = predict_scores(&det, &batch, &mut rng);
    println!("community transaction scores (label → score):");
    for (&t, &sc) in txns.iter().zip(&s) {
        println!(
            "  txn {t:>3} {} → {sc:.3}",
            if community.graph.label(t) == Some(true) {
                "FRAUD"
            } else {
                "legit"
            }
        );
    }

    // Explain the seed: which entities channel the risk?
    let explainer = GnnExplainer::new(&det, ExplainerConfig::default());
    let (_, weights) = explainer.explain_community(&community);
    let links = community.graph.undirected_links();
    // Aggregate edge weight per entity node: entities whose incident edges
    // carry the most explanation mass are the ring infrastructure.
    let mut entity_mass = vec![0.0f64; community.graph.n_nodes()];
    for (&(u, v), &w) in links.iter().zip(&weights) {
        entity_mass[u] += w;
        entity_mass[v] += w;
    }
    let mut ranked: Vec<usize> = (0..community.graph.n_nodes())
        .filter(|&v| community.graph.node_type(v) != NodeType::Txn)
        .collect();
    ranked.sort_by(|&a, &b| entity_mass[b].partial_cmp(&entity_mass[a]).unwrap());
    println!("\nmost influential entities (explanation mass):");
    for &v in ranked.iter().take(5) {
        println!(
            "  {} {v:>3}  degree {:>2}  mass {:.3}",
            community.graph.node_type(v),
            community.graph.degree(v),
            entity_mass[v]
        );
    }
    println!("\nExpected: the ring's shared payment tokens / emails top this list —");
    println!("the same pattern the paper's Fig. 16(b)/(e) 'risk propagation paths' show.");
}
