//! Streaming ingestion: run the full event-sourced lifecycle of a live
//! fraud-scoring deployment.
//!
//! 1. Train the detector+ on today's graph and freeze it behind a
//!    `ScoringEngine`.
//! 2. Emit tomorrow's traffic as a time-ordered `GraphEvent` stream and,
//!    per arriving transaction: append its events to the sharded WAL,
//!    apply them to the live delta overlay, and score it on arrival.
//! 3. Crash. Recover by replaying the WAL into a fresh engine and verify
//!    every probe transaction scores bit-identically to the pre-crash
//!    engine.
//! 4. Tear the tail of one WAL shard (a torn write mid-`fsync`) and show
//!    recovery degrades gracefully: the torn record and everything after
//!    the sequence gap are dropped, nothing panics.
//! 5. Compact the overlay back into an immutable CSR base — scores are
//!    unchanged, the overlay is empty again.
//!
//! Run: `cargo run --release -p xfraud-examples --bin streaming_ingest`

use xfraud::datagen::{event_stream, generate_log};
use xfraud::hetgraph::NodeId;
use xfraud::ingest::{replay_dir, ShardedWal};
use xfraud::{Pipeline, PipelineConfig};

const STREAMED_TXNS: usize = 150;
const WAL_SHARDS: usize = 2;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("training xFraud detector+ ...");
    let cfg = PipelineConfig::builder().epochs(4).build()?;
    let pipeline = Pipeline::run(cfg)?;
    let engine = pipeline.serving_engine().build()?;
    let base_nodes = engine.n_nodes();

    // 2: tomorrow's traffic — a second world from a shifted seed, replayed
    // in arrival-time order on top of the trained base graph.
    let wcfg = pipeline
        .cfg
        .preset
        .config(pipeline.cfg.data_seed.wrapping_add(7));
    let world = generate_log(&wcfg);
    let mut arrivals = event_stream(&world, &wcfg, base_nodes);
    arrivals.truncate(STREAMED_TXNS);

    let dir = std::env::temp_dir().join(format!("xfraud-streaming-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let wal = ShardedWal::create(&dir, WAL_SHARDS)?;

    let mut flagged = 0usize;
    for arrival in &arrivals {
        // Durability first, then visibility: an arrival is acknowledged
        // only once its events are in the log.
        wal.append_batch(&arrival.events)?;
        engine.apply_events(&arrival.events)?;
        let score = engine.score(&[arrival.txn_node])?[0];
        if score > 0.5 {
            flagged += 1;
        }
    }
    wal.sync()?;
    let (on, oe) = engine.overlay_stats();
    println!(
        "streamed {} txns ({} events in the WAL): {flagged} flagged, \
         overlay grew to {on} nodes / {oe} directed edges",
        arrivals.len(),
        wal.next_seq(),
    );

    // Probe set: scores at the current graph state, the ground truth every
    // recovery below must reproduce bit-for-bit.
    let probes: Vec<NodeId> = arrivals.iter().take(10).map(|a| a.txn_node).collect();
    let expected = engine.score(&probes)?;

    // 3: crash and replay. A fresh engine over the same trained base,
    // fed the replayed log, must land in the same graph state.
    drop(wal);
    let replay = replay_dir(&dir, None)?;
    let recovered = pipeline.serving_engine().build()?;
    recovered.apply_events(&replay.events)?;
    assert_eq!(recovered.score(&probes)?, expected);
    println!(
        "crash recovery: replayed {} events, probe scores bit-identical",
        replay.events.len()
    );

    // 4: a torn write — chop a few bytes off one shard's tail, as if the
    // process died mid-append. Recovery keeps the durable prefix.
    let shard = dir.join("wal-0000.log");
    let len = std::fs::metadata(&shard)?.len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(&shard)?
        .set_len(len - 3)?;
    let (healed, partial) = ShardedWal::open(&dir)?;
    println!(
        "torn tail: {} of {} events survive ({} torn, {} beyond the gap); \
         log reopened for appends at seq {}",
        partial.events.len(),
        replay.events.len(),
        partial.dropped_torn,
        partial.dropped_after_gap,
        healed.next_seq(),
    );
    drop(healed);

    // 5: fold the overlay into a fresh immutable base. Pure representation
    // change — the probe scores must not move.
    engine.compact()?;
    assert_eq!(engine.overlay_stats(), (0, 0));
    assert_eq!(engine.score(&probes)?, expected);
    println!("compacted: overlay folded into the base, scores unchanged");

    std::fs::remove_dir_all(&dir)?;
    println!("\n{}", engine.metrics());
    Ok(())
}
