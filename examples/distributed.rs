//! Distributed training (§3.3, Fig. 5): PIC partitioning → κ worker groups
//! → synchronous DDP with gradient averaging, on simulated workers.
//!
//! Demonstrates the paper's headline systems trade-off: more workers train
//! faster per epoch but each sees a more "restrained field of neighbors",
//! costing AUC (§4.1).
//!
//! Run: `cargo run --release -p xfraud-examples --bin distributed`

use xfraud::datagen::{Dataset, DatasetPreset};
use xfraud::dist::{group_partitions, partition_sizes, pic_partition, DdpConfig, DdpTrainer};
use xfraud::gnn::{train_test_split, DetectorConfig, SageSampler, XFraudDetector};

fn main() {
    let ds = Dataset::generate(DatasetPreset::EbaySmallSim, 7);
    let g = &ds.graph;
    let (train, test) = train_test_split(g, 0.3, 42);
    println!(
        "graph: {} nodes, {} links, {} train / {} test labelled txns",
        g.n_nodes(),
        g.n_links(),
        train.len(),
        test.len()
    );

    // Step 1-2: PIC into 128 subgraphs, grouped for κ workers.
    let parts = pic_partition(g, 128, 0);
    let sizes = partition_sizes(&parts);
    println!(
        "\nPIC: {} non-empty partitions, sizes min {} / max {}",
        sizes.iter().filter(|&&s| s > 0).count(),
        sizes.iter().filter(|&&s| s > 0).min().unwrap(),
        sizes.iter().max().unwrap()
    );
    for k in [4usize, 8] {
        let groups = group_partitions(&parts, k);
        let fills: Vec<usize> = groups
            .iter()
            .map(|grp| grp.iter().map(|&p| sizes[p]).sum())
            .collect();
        println!("  κ={k}: group node counts {fills:?}");
    }

    // Step 3: DDP at 2 vs 8 workers.
    let sampler = SageSampler::new(2, 8);
    let fd = g.feature_dim();
    for workers in [2usize, 8] {
        let cfg = DdpConfig {
            n_workers: workers,
            n_partitions: 128,
            epochs: 5,
            seed: 1,
            ..Default::default()
        };
        let mut trainer = DdpTrainer::new(
            g,
            &train,
            || XFraudDetector::new(DetectorConfig::small(fd, 9)),
            cfg,
        );
        println!(
            "\n{workers} workers (labelled txns per worker: {:?})",
            trainer.worker_train_counts()
        );
        let hist = trainer.fit(g, &test, &sampler);
        for e in &hist {
            println!(
                "  epoch {:>2}  loss {:.4}  AUC {:.4}  {:.1}s",
                e.epoch, e.mean_loss, e.val_auc, e.secs
            );
        }
        println!(
            "  replica divergence after training: {} (must be 0 — DDP invariant)",
            trainer.max_replica_divergence()
        );
    }
    println!("\nExpected: the 8-worker run is faster per epoch but its final AUC trails the");
    println!("2-worker run — the paper's resources-vs-quality trade-off (§4.1, Fig. 14).");
}
