//! The example binaries for the xFraud reproduction. Each one is a
//! self-contained tutorial, meant to be read top-to-bottom:
//!
//! | binary | shows |
//! |---|---|
//! | `quickstart` | generate → train detector+ → evaluate → explain one fraud |
//! | `fraud_ring` | a cultivated ring community, its scores and the entities the explainer blames |
//! | `stolen_card` | transaction-level detection separating a thief from the victim on one token |
//! | `distributed` | PIC partitioning, worker groups, DDP training and its resources-vs-AUC trade-off |
//! | `kv_loader` | feature loading through the three KV-store implementations |
//! | `prefilter_pipeline` | the production flow: rule filter → GNN → precision back-mapping |
//! | `online_training` | incremental fine-tuning over a drifting timeline (Appendix H.5) |
//!
//! Run any of them with
//! `cargo run --release -p xfraud-examples --bin <name>`.
