//! The full production flow of Appendix B/H: rule-based pre-filter → GNN
//! detector on the concentrated stream → precision back-mapping to the raw
//! rate.
//!
//! 1. Mine threshold rules on the training features (the platform's
//!    existing defence layer, footnote 6: skope-rules).
//! 2. Drop "low-risk" transactions the rules never flag.
//! 3. Run the trained detector+ only on the surviving stream.
//! 4. Report how precision/recall compose across the two stages.
//!
//! Run: `cargo run --release -p xfraud-examples --bin prefilter_pipeline`

use xfraud::gnn::TrainConfig;
use xfraud::metrics::{confusion_at, precision_at_base_rate, roc_auc};
use xfraud::rules::{MinerConfig, RuleMiner};
use xfraud::{Pipeline, PipelineConfig};

fn main() -> Result<(), xfraud::Error> {
    println!("training detector+ ...");
    let cfg = PipelineConfig::builder().epochs(6).build()?;
    let pipeline = Pipeline::run(cfg)?;
    let g = &pipeline.dataset.graph;

    // Stage 1: mine the platform rules on the training stream.
    let row_of = |v: usize| g.features().row(g.feature_row_of(v).expect("txn"));
    let train_rows: Vec<&[f32]> = pipeline.train_nodes.iter().map(|&v| row_of(v)).collect();
    let train_labels: Vec<bool> = pipeline
        .train_nodes
        .iter()
        .map(|&v| g.label(v) == Some(true))
        .collect();
    let base_rate = train_labels.iter().filter(|&&y| y).count() as f64 / train_labels.len() as f64;
    let ruleset = RuleMiner::new(MinerConfig {
        min_precision: 1.5 * base_rate,
        min_support: 20,
        max_rules: 20,
        beam: 16,
        ..MinerConfig::default()
    })
    .mine(&train_rows, &train_labels);
    println!("stage 1: {} platform rules mined", ruleset.rules.len());

    // Stage 2: filter the held-out stream.
    let test_rows: Vec<&[f32]> = pipeline.test_nodes.iter().map(|&v| row_of(v)).collect();
    let (risky_idx, low_idx) = ruleset.filter(&test_rows);
    let kept: Vec<usize> = risky_idx.iter().map(|&i| pipeline.test_nodes[i]).collect();
    println!(
        "stage 2: {} of {} held-out transactions survive the filter ({} dropped)",
        kept.len(),
        pipeline.test_nodes.len(),
        low_idx.len()
    );

    // Stage 3: GNN only on the survivors.
    let trainer = xfraud::gnn::Trainer::new(TrainConfig::default());
    let (scores, labels) = trainer.evaluate(&pipeline.detector, g, &pipeline.sampler, &kept, 3);
    println!(
        "stage 3: detector+ AUC on the filtered stream = {:.4}",
        roc_auc(&scores, &labels)
    );

    // Stage 4: composed precision/recall. Fraud missed by the filter can
    // never be recalled downstream.
    let filter_recall = {
        let total_fraud = pipeline
            .test_nodes
            .iter()
            .filter(|&&v| g.label(v) == Some(true))
            .count();
        let kept_fraud = labels.iter().filter(|&&y| y).count();
        kept_fraud as f64 / total_fraud.max(1) as f64
    };
    println!(
        "\n{:>9} {:>10} {:>14} {:>16}",
        "threshold", "precision", "pipeline recall", "prec@0.043% raw"
    );
    for t in [0.5f32, 0.8, 0.9, 0.95] {
        let c = confusion_at(&scores, &labels, t);
        if c.tp + c.fp == 0 {
            continue;
        }
        let pipeline_recall = c.recall() * filter_recall;
        let sampled_rate = labels.iter().filter(|&&y| y).count() as f64 / labels.len() as f64;
        let raw = precision_at_base_rate(c.precision(), sampled_rate, 0.00043);
        println!(
            "{t:>9} {:>10.4} {:>14.4} {:>16.4}",
            c.precision(),
            pipeline_recall,
            raw
        );
    }
    println!("\nThe two stages compose exactly like the paper's production pipeline:");
    println!("rules concentrate the stream cheaply, the GNN spends its capacity on the");
    println!("survivors, and Appendix-H.4 maps precision back to the raw fraud rate.");
    Ok(())
}
