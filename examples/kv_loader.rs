//! Feature loading through the KV-store substrate (§3.3.3): store a
//! dataset's transaction features in each store implementation, load
//! training batches through it, and watch the multi-reader store scale
//! where the single-lock store flatlines — Fig. 12 vs Fig. 13.
//!
//! Run: `cargo run --release -p xfraud-examples --bin kv_loader`

use std::sync::Arc;

use xfraud::datagen::{Dataset, DatasetPreset};
use xfraud::kvstore::{FeatureStore, KvStore, LogStore, ShardedStore, SingleLockStore};

fn main() {
    let ds = Dataset::generate(DatasetPreset::EbayLargeSim, 7);
    let g = &ds.graph;
    let dim = g.feature_dim();
    println!(
        "dataset: {} txns x {} features → KV stores\n",
        g.txn_nodes().len(),
        dim
    );

    let stores: Vec<Arc<dyn KvStore>> = vec![
        Arc::new(SingleLockStore::new()),
        Arc::new(ShardedStore::new(64)),
        {
            let mut p = std::env::temp_dir();
            p.push(format!("xfraud-kv-loader-{}.log", std::process::id()));
            Arc::new(LogStore::create(&p, 64).expect("log store"))
        },
    ];

    // The ids every epoch's loaders fetch (simulating per-batch feature
    // gathers across the labelled transactions, several passes).
    let ids: Vec<usize> = (0..g.txn_nodes().len())
        .cycle()
        .take(g.txn_nodes().len() * 6)
        .collect();

    for store in stores {
        let fs = FeatureStore::new(store, dim);
        // Ingest the feature matrix.
        fs.put_matrix(0, g.features());
        println!(
            "{} store ({} rows ingested):",
            fs.store_name(),
            g.features().rows()
        );
        let mut base = 0.0;
        for threads in [1usize, 2, 4, 8] {
            let (_, secs, tput) = fs.load_parallel(&ids, threads);
            if threads == 1 {
                base = tput;
            }
            println!(
                "  {threads} loader(s): {secs:>6.3}s  {tput:>10.0} rows/s  ({:.2}x)",
                tput / base.max(1.0)
            );
        }
        println!();
    }
    println!("paper: swapping the single-threaded store for the multi-threaded one cut");
    println!("eBay-large epochs from 45 min to ~1 min (Appendix C).");
}
