//! Case study: stolen payment tokens (§3.1's motivating scenario — "a
//! credit card might be linked to both a legitimate user and a fraudulent
//! user at different stages").
//!
//! Shows the transaction-level (not account-level) framing the paper argues
//! for: the *victim's* own transactions stay legit while the thief's burst
//! on the same token is flagged — something an account-level detector like
//! GEM structurally can't express.
//!
//! Run: `cargo run --release -p xfraud-examples --bin stolen_card`

use rand::rngs::StdRng;
use rand::SeedableRng;

use xfraud::datagen::{build_dataset, generate_log, FraudMechanism, WorldConfig};
use xfraud::gnn::{
    predict_scores, train_test_split, DetectorConfig, SageSampler, SubgraphBatch, TrainConfig,
    Trainer, XFraudDetector,
};
use xfraud::hetgraph::{community_of, NodeType};
use xfraud::metrics::roc_auc;

fn main() {
    let cfg = WorldConfig {
        n_stolen_card_incidents: 14,
        stolen_burst: 5,
        n_rings: 1,
        n_warehouses: 1,
        n_guest_frauds: 4,
        seed: 33,
        ..WorldConfig::default()
    };
    let world = generate_log(&cfg);
    let stolen = world
        .records
        .iter()
        .filter(|r| r.mechanism == FraudMechanism::StolenCard)
        .count();
    println!(
        "world: {} transactions, {stolen} on stolen cards",
        world.records.len()
    );
    let ds = build_dataset(&world, &cfg);
    let g = &ds.graph;

    let (train, test) = train_test_split(g, 0.3, 2);
    let mut det = XFraudDetector::new(DetectorConfig::small(g.feature_dim(), 4));
    let sampler = SageSampler::new(2, 8);
    let trainer = Trainer::new(TrainConfig {
        epochs: 6,
        ..TrainConfig::default()
    });
    trainer.fit(&mut det, g, &sampler, &train, &test);
    let (scores, labels) = trainer.evaluate(&det, g, &sampler, &test, 5);
    println!("test AUC = {:.4}\n", roc_auc(&scores, &labels));

    // Find the payment token with the strongest stolen-card signature:
    // linked to several frauds AND several legit transactions. (Taking the
    // *most* mixed token skips spurious single-flip label-noise cases.)
    let mixed_pmt = (0..g.n_nodes())
        .filter(|&v| g.node_type(v) == NodeType::Pmt)
        .max_by_key(|&v| {
            let mut fraud = 0usize;
            let mut legit = 0usize;
            for u in g.neighbors(v) {
                match g.label(u) {
                    Some(true) => fraud += 1,
                    Some(false) => legit += 1,
                    None => {}
                }
            }
            fraud.min(legit) * 100 + fraud + legit
        })
        .expect("a stolen token exists");
    println!("payment token {mixed_pmt} is linked to both fraud and legit transactions:");

    let community = community_of(g, g.neighbors(mixed_pmt).next().unwrap(), 400).unwrap();
    let local_pmt = community
        .original_ids
        .iter()
        .position(|&v| v == mixed_pmt)
        .expect("token in its own community");
    let token_txns: Vec<usize> = community
        .graph
        .neighbors(local_pmt)
        .filter(|&u| community.graph.label(u).is_some())
        .collect();
    let nodes: Vec<usize> = (0..community.graph.n_nodes()).collect();
    let batch = SubgraphBatch::from_nodes(&community.graph, &nodes, &token_txns);
    let mut rng = StdRng::seed_from_u64(5);
    let s = predict_scores(&det, &batch, &mut rng);

    let mut fraud_scores = Vec::new();
    let mut legit_scores = Vec::new();
    for (&t, &sc) in token_txns.iter().zip(&s) {
        let is_fraud = community.graph.label(t) == Some(true);
        println!(
            "  txn {t:>3} {} → {sc:.3}",
            if is_fraud { "FRAUD" } else { "legit" }
        );
        if is_fraud {
            fraud_scores.push(sc);
        } else {
            legit_scores.push(sc);
        }
    }
    let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len().max(1) as f32;
    println!(
        "\nmean score on this token — thief's txns: {:.3}, victim's txns: {:.3}",
        mean(&fraud_scores),
        mean(&legit_scores)
    );
    println!("Transaction-level detection separates the two users of one token, which is");
    println!("exactly why xFraud flags transactions rather than accounts (§3.2.1 vs GEM).");
}
