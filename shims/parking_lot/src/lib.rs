//! Offline stand-in for `parking_lot 0.12`: `Mutex` and `RwLock` with the
//! non-poisoning `lock()/read()/write()` signatures, implemented over the
//! std primitives. Poison is swallowed by recovering the inner guard, which
//! matches parking_lot's "no poisoning" semantics closely enough for the
//! KV-store benchmarks and tests in this workspace.

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// `Some(guard)` if the lock is free right now (parking_lot signature:
    /// an `Option`, not std's `Result`).
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_guards_mutation() {
        let m = Mutex::new(0);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        assert_eq!(m.into_inner(), 5);
    }

    #[test]
    fn rwlock_allows_parallel_reads() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
