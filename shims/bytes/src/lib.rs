//! Offline stand-in for `bytes 1.x`: an immutable, cheaply-cloneable byte
//! buffer backed by `Arc<[u8]>`. Covers exactly what the KV stores use —
//! `Bytes::from(Vec<u8>)`, `Bytes::copy_from_slice`, deref to `[u8]`,
//! cloning — without the zero-copy slicing machinery of the real crate.

use std::sync::Arc;

#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b{:?}", &self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn roundtrips_and_derefs() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.len(), 3);
        let c = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(b, c);
        let opt = Some(b.clone());
        assert_eq!(opt.as_deref(), Some(&[1u8, 2, 3][..]));
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert!(Bytes::new().is_empty());
    }
}
