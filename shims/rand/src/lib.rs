//! Offline stand-in for the `rand 0.8` API surface this workspace uses.
//!
//! The container image has no crates.io access, so the workspace builds its
//! external dependencies from `shims/`. This crate implements the subset of
//! `rand` the codebase calls — `StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool}` and `seq::SliceRandom` — on top of a
//! xoshiro256++ generator seeded through SplitMix64. It is *not* stream-
//! compatible with upstream `rand`; all determinism guarantees in this repo
//! are relative to this implementation.

pub mod rngs {
    /// The workspace's standard seeded generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }

        #[inline]
        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            let s = &mut self.s;
            let result = (s[0].wrapping_add(s[3])).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl crate::RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.next_u64_impl()
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into the 256-bit state,
            // as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng::from_state([next(), next(), next(), next()])
        }
    }
}

/// Raw 64-bit generator interface; everything else is derived from it.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types `Rng::gen` can produce (the `Standard` distribution of real rand).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u8 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        rng.next_u64() as u8
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for usize {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

/// Ranges accepted by `Rng::gen_range`. Implemented blanket-style over
/// [`SampleUniform`] so type inference can unify the range's element type
/// with the surrounding expression, exactly like upstream rand.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types `gen_range` can draw uniformly.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Uniform draw from `[lo, hi]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_range_inclusive(rng, lo, hi)
    }
}

/// Unbiased integer draw in `[0, n)` via Lemire-style rejection on the top
/// bits (simple widening-multiply variant).
#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Rejection zone keeps the draw exactly uniform.
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + uniform_u64_below(rng, span) as i128) as $t
            }

            #[inline]
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let unit = <$t as Standard>::sample(rng);
                lo + (hi - lo) * unit
            }

            #[inline]
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                // The [lo, hi) draw is measure-equivalent for floats.
                Self::sample_range(rng, lo, hi)
            }
        }
    )*};
}

float_uniform!(f32, f64);

/// The user-facing generator trait (subset of `rand::Rng`).
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p}");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use crate::{Rng, RngCore};

    /// Slice shuffling (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle of the whole slice.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Shuffles `amount` elements into the front of the slice, drawn
        /// uniformly without replacement from the whole slice; returns the
        /// `(front, rest)` split like upstream rand.
        fn partial_shuffle<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [Self::Item], &mut [Self::Item]);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn partial_shuffle<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [T], &mut [T]) {
            let len = self.len();
            let amount = amount.min(len);
            for i in 0..amount {
                let j = rng.gen_range(i..len);
                self.swap(i, j);
            }
            self.split_at_mut(amount)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_stay_in_range_and_look_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| {
                let v = rng.gen::<f64>();
                assert!((0.0..1.0).contains(&v));
                v
            })
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let mf: f32 = (0..n).map(|_| rng.gen::<f32>()).sum::<f32>() / n as f32;
        assert!((mf - 0.5).abs() < 0.01, "f32 mean {mf}");
    }

    #[test]
    fn gen_range_hits_all_buckets_uniformly() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 8];
        for _ in 0..16_000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((1700..2300).contains(&c), "counts {counts:?}");
        }
        for _ in 0..1000 {
            let v = rng.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&v));
            let w = rng.gen_range(0..=2u8);
            assert!(w <= 2);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2800..3200).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation_and_partial_shuffle_splits() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());

        let mut w: Vec<usize> = (0..50).collect();
        let (front, rest) = w.partial_shuffle(&mut rng, 10);
        assert_eq!(front.len(), 10);
        assert_eq!(rest.len(), 40);
        let mut all: Vec<usize> = front.iter().chain(rest.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..50).collect::<Vec<_>>());
    }
}
