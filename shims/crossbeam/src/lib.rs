//! Offline stand-in for the `crossbeam 0.8` API surface this workspace
//! uses: `crossbeam::scope` (scoped threads) and `crossbeam::channel`'s
//! bounded MPSC channel. Both are thin wrappers over `std` — `std::thread::
//! scope` and `std::sync::mpsc::sync_channel` — so behaviour matches the
//! std guarantees, not upstream crossbeam's (e.g. the receiver here is
//! single-consumer, which is all the batch engine needs).

use std::any::Any;

/// Scoped-thread handle mirroring `crossbeam::thread::ScopedJoinHandle`.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

/// Scope mirroring `crossbeam::thread::Scope`; `spawn` hands the closure a
/// `&Scope` so nested spawns keep working.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || {
                let scope = Scope { inner };
                f(&scope)
            }),
        }
    }
}

/// `crossbeam::scope`: runs `f` with a scope that joins all spawned threads
/// before returning. Unlike upstream, an unjoined panicking child aborts via
/// `std::thread::scope`'s panic instead of surfacing through the `Result`;
/// every caller in this workspace joins its handles explicitly.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

pub mod channel {
    //! Bounded MPSC channel (subset of `crossbeam::channel`).

    pub use std::sync::mpsc::{RecvError, SendError};

    /// Cloneable producer half.
    pub struct Sender<T> {
        inner: std::sync::mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Blocks while the channel is full; errors once the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)
        }
    }

    /// Single-consumer half (upstream crossbeam receivers are cloneable;
    /// nothing in this workspace relies on that).
    pub struct Receiver<T> {
        inner: std::sync::mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives; errors once all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        /// Iterates until every sender disconnects.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.iter()
        }
    }

    /// Creates a bounded channel with capacity `cap` (>= 1).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::sync_channel(cap.max(1));
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns_values() {
        let data = [1, 2, 3, 4];
        let sum = super::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 2)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<i32>()
        })
        .unwrap();
        assert_eq!(sum, 20);
    }

    #[test]
    fn nested_spawn_through_the_passed_scope_works() {
        let v = super::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 7).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(v, 7);
    }

    #[test]
    fn bounded_channel_delivers_in_order_per_sender() {
        let (tx, rx) = super::channel::bounded(2);
        let got = super::scope(|s| {
            s.spawn(move |_| {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            rx.iter().collect::<Vec<i32>>()
        })
        .unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
