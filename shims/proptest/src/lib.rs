//! Offline stand-in for the `proptest 1.x` API surface this workspace uses:
//! the `proptest!` test macro, range / `any` / tuple / `prop_oneof` /
//! `prop_map` / `prop::collection::vec` strategies, and the `prop_assert*`
//! family. Cases are generated from a deterministic per-test seed (an FNV
//! hash of the test name), so failures reproduce run-to-run; there is **no
//! shrinking** — a failing case panics with the usual assert message.

use rand::rngs::StdRng;

pub mod test_runner {
    /// Subset of `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 128 }
        }
    }
}

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A generator of test inputs. Unlike real proptest there is no value
    /// tree or shrinking; `generate` draws one value.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy for heterogeneous unions (`prop_oneof!`).
        fn boxed_gen(self) -> BoxedGen<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedGen {
                gen: Box::new(move |rng| self.generate(rng)),
            }
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Type-erased strategy (the arms of `prop_oneof!`).
    pub struct BoxedGen<T> {
        gen: Box<dyn Fn(&mut StdRng) -> T>,
    }

    impl<T> Strategy for BoxedGen<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            (self.gen)(rng)
        }
    }

    /// Uniform choice between alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedGen<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedGen<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    /// A constant strategy (`Just` in real proptest).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

/// Types with a default generation strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        use rand::Rng;
        rng.gen::<bool>()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut StdRng) -> f32 {
        use rand::Rng;
        rng.gen_range(-1e6f32..1e6)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        use rand::Rng;
        rng.gen_range(-1e6f64..1e6)
    }
}

/// `any::<T>()` strategy.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> strategy::Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

pub mod prop {
    pub mod collection {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Length specification: a fixed size or a `usize` range.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi_exclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange {
                    lo: n,
                    hi_exclusive: n + 1,
                }
            }
        }

        impl From<core::ops::Range<usize>> for SizeRange {
            fn from(r: core::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty vec size range");
                SizeRange {
                    lo: r.start,
                    hi_exclusive: r.end,
                }
            }
        }

        impl From<core::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: core::ops::RangeInclusive<usize>) -> Self {
                SizeRange {
                    lo: *r.start(),
                    hi_exclusive: *r.end() + 1,
                }
            }
        }

        /// `prop::collection::vec(element, size)`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop, Arbitrary};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

// The generated tests name rand types through `$crate`, so downstream test
// crates don't need their own `rand` dependency.
#[doc(hidden)]
pub use rand as __rand;

/// Deterministic per-test seed: FNV-1a over the test's name.
#[doc(hidden)]
pub fn fnv1a_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the rest of the current case when the assumption fails. Works
/// because `proptest!` wraps each case body in a closure.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Uniform choice between strategies producing the same value type.
/// (Real proptest supports weighted arms; the unweighted form is all this
/// workspace uses.)
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed_gen($arm)),+
        ])
    };
}

/// The `proptest!` test-generation macro: each `fn name(arg in strategy,
/// ...)` item becomes a `#[test]` that runs `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng =
                <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                    $crate::fnv1a_seed(concat!(module_path!(), "::", stringify!($name))),
                );
            for __case in 0..cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let mut __body = || $body;
                __body();
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Put(u8, Vec<u8>),
        Get(u8),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (any::<u8>(), prop::collection::vec(any::<u8>(), 0..12))
                .prop_map(|(k, v)| Op::Put(k, v)),
            any::<u8>().prop_map(Op::Get),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges respect their bounds.
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, f in -1.5f32..2.5, s in 0u64..1000) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.5..2.5).contains(&f));
            prop_assert!(s < 1000, "s = {s}");
        }

        /// Vec strategies respect their size spec, fixed and ranged.
        #[test]
        fn vec_sizes(v in prop::collection::vec(any::<bool>(), 2..6),
                     w in prop::collection::vec(0.0f32..1.0, 4)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert_eq!(w.len(), 4);
            prop_assert!(w.iter().all(|x| (0.0..1.0).contains(x)));
        }

        /// prop_oneof + prop_map compose; prop_assume skips cases.
        #[test]
        fn oneof_and_assume(op in op_strategy(), gate in any::<bool>()) {
            prop_assume!(gate);
            match op {
                Op::Put(_, v) => prop_assert!(v.len() < 12),
                Op::Get(_) => {}
            }
        }
    }

    #[test]
    fn seeds_differ_per_test_name() {
        assert_ne!(super::fnv1a_seed("a::b"), super::fnv1a_seed("a::c"));
    }
}
