//! Offline stand-in for `criterion 0.5`: enough of the API to compile and
//! run this workspace's `harness = false` benches. Each `bench_function`
//! warms up for `warm_up_time`, then measures whole-iteration wall time for
//! `measurement_time` (at least `sample_size` iterations when the workload
//! allows) and prints `name  time: [min mean max]` in a criterion-like
//! format. There is no statistical regression machinery.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Timing loop handle passed to `bench_function` closures.
pub struct Bencher {
    /// Per-iteration wall-clock durations of the measurement phase.
    samples: Vec<Duration>,
    warm_up_time: Duration,
    measurement_time: Duration,
    min_samples: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run without recording.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            black_box(f());
        }
        // Measurement: record per-iteration durations until the time budget
        // and the minimum sample count are both satisfied.
        let measure_start = Instant::now();
        loop {
            let t = Instant::now();
            black_box(f());
            self.samples.push(t.elapsed());
            if measure_start.elapsed() >= self.measurement_time
                && self.samples.len() >= self.min_samples
            {
                break;
            }
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_bench(
    id: &str,
    warm_up_time: Duration,
    measurement_time: Duration,
    min_samples: usize,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        samples: Vec::new(),
        warm_up_time,
        measurement_time,
        min_samples,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<40} time: [no samples]");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = *b.samples.iter().min().expect("non-empty");
    let max = *b.samples.iter().max().expect("non-empty");
    println!(
        "{id:<40} time: [{} {} {}]  ({} samples)",
        format_duration(min),
        format_duration(mean),
        format_duration(max),
        b.samples.len(),
    );
}

/// Top-level benchmark driver (subset of `criterion::Criterion`).
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
            sample_size: 10,
        }
    }
}

impl Criterion {
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_bench(
            id,
            self.warm_up_time,
            self.measurement_time,
            self.sample_size,
            &mut f,
        );
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            _parent: std::marker::PhantomData,
        }
    }

    /// Upstream parses CLI args here; the shim ignores them.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Called by `criterion_main!` after all groups ran.
    pub fn final_summary(&mut self) {}
}

/// Named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_bench(
            &full,
            self.warm_up_time,
            self.measurement_time,
            self.sample_size,
            &mut f,
        );
        self
    }

    pub fn finish(self) {}
}

/// Declares a benchmark group; both upstream forms are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point for `harness = false` bench binaries.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
    }

    #[test]
    fn bench_function_runs_and_records() {
        let mut c = quick();
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn groups_run_all_functions() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut hits = 0u64;
        group.bench_function("one", |b| b.iter(|| hits += 1));
        group.bench_function("two", |b| b.iter(|| hits += 1));
        group.finish();
        assert!(hits >= 6);
    }
}
