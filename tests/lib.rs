//! Host package for the workspace-level integration tests in `tests/tests/`.
