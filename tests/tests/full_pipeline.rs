//! End-to-end integration: dataset generation → detector training →
//! explanation → hit-rate evaluation, across crate boundaries.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xfraud::explain::centrality::Measure;
use xfraud::explain::{topk_hit_rate_expected, HybridExplainer};
use xfraud::gnn::TrainConfig;
use xfraud::study::{CommunityStudy, StudyConfig};
use xfraud::{Pipeline, PipelineConfig};

fn quick_pipeline() -> Pipeline {
    let cfg = PipelineConfig::builder()
        .train(TrainConfig {
            epochs: 5,
            ..TrainConfig::default()
        })
        .build()
        .expect("valid config");
    Pipeline::run(cfg).expect("pipeline trains")
}

#[test]
fn detector_beats_chance_and_feature_only_floor() {
    let p = quick_pipeline();
    let (auc, ap, _) = p.test_metrics();
    assert!(auc > 0.68, "detector AUC {auc}");
    // AP must clear the base rate (~5%) by a wide margin.
    assert!(ap > 0.15, "AP {ap}");
}

#[test]
fn explainer_agrees_with_annotations_better_than_random() {
    // Averaged over ranks and a sizeable community sample (single
    // communities are high-variance, like the paper's own Fig. 7 deltas).
    let p = quick_pipeline();
    let study = CommunityStudy::build(
        &p,
        StudyConfig {
            n_communities: 24,
            ..StudyConfig::default()
        },
    );
    assert!(study.communities.len() >= 12, "need enough communities");
    let mut rng = StdRng::seed_from_u64(5);
    let (mut h_expl, mut h_rand) = (0.0, 0.0);
    let ks = [5usize, 10, 15];
    for sc in &study.communities {
        for &k in &ks {
            h_expl += topk_hit_rate_expected(&sc.human, &sc.explainer, k, 50, &mut rng);
            // Random baseline averaged over 5 draws.
            for _ in 0..5 {
                let w: Vec<f64> = (0..sc.human.len()).map(|_| rng.gen()).collect();
                h_rand += topk_hit_rate_expected(&sc.human, &w, k, 50, &mut rng) / 5.0;
            }
        }
    }
    let n = (study.communities.len() * ks.len()) as f64;
    assert!(
        h_expl / n > h_rand / n,
        "explainer {:.3} must beat random {:.3}",
        h_expl / n,
        h_rand / n
    );
}

#[test]
fn hybrid_explainer_is_competitive_with_both_arms_on_train() {
    let p = quick_pipeline();
    let study = CommunityStudy::build(
        &p,
        StudyConfig {
            n_communities: 8,
            ..StudyConfig::default()
        },
    );
    let all = study.to_community_weights(Measure::EdgeBetweenness);
    let mut rng = StdRng::seed_from_u64(6);
    let k = 10;
    let grid = HybridExplainer::fit_grid(&all, k, 30, &mut rng);
    let h_hybrid = grid.mean_hit_rate(&all, k, 50, &mut rng);
    let only_c = HybridExplainer {
        a: 1.0,
        b: 0.0,
        fit: grid.fit,
    }
    .mean_hit_rate(&all, k, 50, &mut rng);
    let only_e = HybridExplainer {
        a: 0.0,
        b: 1.0,
        fit: grid.fit,
    }
    .mean_hit_rate(&all, k, 50, &mut rng);
    assert!(
        h_hybrid >= only_c.max(only_e) - 0.03,
        "hybrid {h_hybrid:.3} vs c {only_c:.3} / e {only_e:.3}"
    );
}

#[test]
fn centrality_measures_all_produce_aligned_weights() {
    let p = quick_pipeline();
    let study = CommunityStudy::build(
        &p,
        StudyConfig {
            n_communities: 4,
            ..StudyConfig::default()
        },
    );
    for m in xfraud::explain::centrality::ALL_MEASURES {
        let per_comm = study.centrality_weights(m);
        for (sc, w) in study.communities.iter().zip(&per_comm) {
            assert_eq!(
                w.len(),
                sc.community.graph.undirected_links().len(),
                "{} misaligned",
                m.name()
            );
            assert!(w.iter().all(|x| x.is_finite()));
        }
    }
}

#[test]
fn study_statistics_resemble_the_papers_sample() {
    let p = quick_pipeline();
    let study = CommunityStudy::build(&p, StudyConfig::default());
    let (fraud, legit) = study.seed_label_counts();
    // Mixed seed labels, like the paper's 18/23 split.
    assert!(fraud >= 1, "no fraud-seeded communities");
    assert!(legit >= 1, "no legit-seeded communities");
    assert!(
        study.mean_links() >= 12.0,
        "communities too small: {}",
        study.mean_links()
    );
}
