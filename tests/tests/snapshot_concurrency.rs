//! The serve-path lock-freedom contract, exercised end-to-end: scoring
//! readers and snapshot takers run concurrently with a writer that applies
//! event batches and compacts, and
//!
//! 1. scoring keeps working, lock-free, while the writer publishes — every
//!    returned score is finite and the engine stays deterministic once the
//!    churn settles (per-version bit-equivalence with the sequential path is
//!    covered by `serving_equivalence.rs`);
//! 2. every pinned snapshot is internally consistent (validates, and its
//!    flattened CSR matches a per-version quiesced flatten);
//! 3. retired graph versions are reclaimed once readers quiesce —
//!    `retired_graphs()` drains back toward zero instead of growing without
//!    bound.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

use xfraud::hetgraph::{GraphEvent, GraphSnapshot, NodeId, NodeType};
use xfraud::kernels::FlatCsr;
use xfraud::{Pipeline, PipelineConfig};

fn pipeline() -> &'static Pipeline {
    static PIPELINE: OnceLock<Pipeline> = OnceLock::new();
    PIPELINE.get_or_init(|| {
        let cfg = PipelineConfig::builder()
            .epochs(2)
            .build()
            .expect("valid config");
        Pipeline::run(cfg).expect("pipeline trains")
    })
}

/// A small stream of schema-valid events: each batch adds one entity and a
/// couple of transactions linked to it.
fn event_batch(dim: usize, i: usize) -> Vec<GraphEvent> {
    let ty = [
        NodeType::Pmt,
        NodeType::Email,
        NodeType::Addr,
        NodeType::Buyer,
    ][i % 4];
    vec![
        GraphEvent::AddEntity { ty },
        GraphEvent::AddTxn {
            features: vec![0.25; dim],
            label: Some(i.is_multiple_of(3)),
        },
        GraphEvent::AddTxn {
            features: vec![0.75; dim],
            label: None,
        },
    ]
}

#[test]
fn scores_and_snapshots_stay_consistent_under_writer_churn() {
    let p = pipeline();
    let engine = p.serving_engine().build().expect("engine builds");
    let dim = p.dataset.graph.feature_dim();

    let pool: Vec<NodeId> = p.test_nodes.iter().copied().take(8).collect();

    const BATCHES: usize = 40;
    let done = AtomicBool::new(false);
    let mut snapshots: Vec<GraphSnapshot> = Vec::new();

    std::thread::scope(|s| {
        // Scoring readers: requests must keep succeeding (and stay finite)
        // while the graph grows underneath them — no lock, no torn reads.
        let scorers: Vec<_> = (0..2)
            .map(|_| {
                let engine = &engine;
                let pool = &pool;
                let done = &done;
                s.spawn(move || {
                    let mut rounds = 0usize;
                    while !done.load(Ordering::Acquire) && rounds < 10_000 {
                        let got = engine.score(pool).expect("scores during churn");
                        for (&t, &sc) in pool.iter().zip(&got) {
                            assert!(sc.is_finite(), "score of txn {t} went non-finite");
                        }
                        rounds += 1;
                    }
                    rounds
                })
            })
            .collect();

        // Snapshot taker: pin versions while the writer publishes.
        let snapper = {
            let engine = &engine;
            let done = &done;
            s.spawn(move || {
                let mut taken = Vec::new();
                while !done.load(Ordering::Acquire) && taken.len() < 2_000 {
                    taken.push(engine.graph_snapshot());
                }
                taken
            })
        };

        // Writer: apply batches, compacting every few publishes.
        for i in 0..BATCHES {
            engine
                .apply_events(&event_batch(dim, i))
                .expect("events apply");
            if i % 5 == 4 {
                engine.compact().expect("compaction succeeds");
            }
        }
        done.store(true, Ordering::Release);

        for sc in scorers {
            let rounds = sc.join().expect("scorer joins");
            assert!(rounds > 0, "scorer never completed a round");
        }
        snapshots = snapper.join().expect("snapper joins");
    });

    // Rebuild each observed version quiesced and compare the flattened CSR.
    assert!(!snapshots.is_empty());
    let mut by_version: HashMap<u64, FlatCsr> = HashMap::new();
    for snap in &snapshots {
        let flat = FlatCsr::from_view(snap).expect("snapshot flattens");
        let version = snap.version();
        assert!(version <= BATCHES as u64, "version beyond writer publishes");
        if let Some(prev) = by_version.get(&version) {
            assert_eq!(prev, &flat, "two snapshots of version {version} disagree");
        } else {
            by_version.insert(version, flat);
        }
    }
    let mut quiesced =
        xfraud::hetgraph::DeltaGraph::new(std::sync::Arc::new(p.dataset.graph.clone()));
    let mut reference: Vec<FlatCsr> = vec![FlatCsr::from_view(&quiesced).expect("flattens")];
    for i in 0..BATCHES {
        for e in event_batch(dim, i) {
            quiesced.apply(&e).expect("events apply");
        }
        reference.push(FlatCsr::from_view(&quiesced).expect("flattens"));
    }
    let mut versions: Vec<u64> = by_version.keys().copied().collect();
    versions.sort_unstable();
    for v in versions {
        assert_eq!(
            &by_version[&v], &reference[v as usize],
            "snapshot of version {v} diverged from the quiesced rebuild"
        );
    }

    // Settled engine is deterministic: two identical requests, same bits.
    let a = engine.score(&pool).expect("post-churn scores");
    let b = engine.score(&pool).expect("post-churn scores");
    assert_eq!(a, b, "settled engine must be deterministic");

    // Snapshots hold independent clones, not epoch pins; with no reader
    // pinned, the next publish reclaims every retired version.
    drop(snapshots);
    by_version.clear();
    engine
        .apply_events(&event_batch(dim, BATCHES))
        .expect("events apply");
    engine.compact().expect("compaction succeeds");
    assert!(
        engine.retired_graphs() <= 1,
        "retired graphs should drain once readers quiesce, got {}",
        engine.retired_graphs()
    );
}
