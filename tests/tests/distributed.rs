//! Cross-crate distributed-training integration: PIC + grouping + DDP over
//! real generated graphs, with the paper's observable invariants.

use xfraud::datagen::{Dataset, DatasetPreset};
use xfraud::dist::{group_partitions, partition_sizes, pic_partition, DdpConfig, DdpTrainer};
use xfraud::gnn::{train_test_split, DetectorConfig, SageSampler, XFraudDetector};

#[test]
fn pic_plus_grouping_covers_every_node_once() {
    let g = Dataset::generate(DatasetPreset::EbaySmallSim, 4).graph;
    let parts = pic_partition(&g, 64, 0);
    assert_eq!(parts.len(), g.n_nodes());
    let sizes = partition_sizes(&parts);
    assert_eq!(sizes.iter().sum::<usize>(), g.n_nodes());
    let groups = group_partitions(&parts, 8);
    let mut all: Vec<usize> = groups.concat();
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len(), sizes.iter().filter(|&&s| s > 0).count());
    // Balance: no group more than 3x the smallest non-empty group.
    let fills: Vec<usize> = groups
        .iter()
        .map(|g| g.iter().map(|&p| sizes[p]).sum())
        .collect();
    let max = *fills.iter().max().unwrap();
    let min = *fills.iter().filter(|&&f| f > 0).min().unwrap();
    assert!(max <= min * 3, "imbalanced groups: {fills:?}");
}

#[test]
fn ddp_eight_workers_trains_with_identical_replicas() {
    let ds = Dataset::generate(DatasetPreset::EbaySmallSim, 4);
    let g = &ds.graph;
    let (train, test) = train_test_split(g, 0.3, 1);
    let fd = g.feature_dim();
    // 8 workers on the small graph leave each replica only ~190 labelled
    // txns — give it a few epochs to clear chance level.
    let cfg = DdpConfig {
        n_workers: 8,
        n_partitions: 64,
        epochs: 5,
        ..Default::default()
    };
    let mut trainer = DdpTrainer::new(
        g,
        &train,
        || XFraudDetector::new(DetectorConfig::small(fd, 3)),
        cfg,
    );
    let hist = trainer.fit(g, &test, &SageSampler::new(2, 6));
    assert_eq!(trainer.max_replica_divergence(), 0.0);
    assert_eq!(hist.len(), 5);
    assert!(
        hist.last().unwrap().val_auc > 0.52,
        "AUC {} must rise above chance",
        hist.last().unwrap().val_auc
    );
}

#[test]
fn more_workers_do_not_converge_faster_per_epoch() {
    // The paper's §4.1 finding at miniature scale: the 16-worker run's AUC
    // after the same epochs is no better than the 2-worker run's.
    let ds = Dataset::generate(DatasetPreset::EbaySmallSim, 4);
    let g = &ds.graph;
    let (train, test) = train_test_split(g, 0.3, 1);
    let fd = g.feature_dim();
    let auc_for = |workers: usize| {
        let cfg = DdpConfig {
            n_workers: workers,
            n_partitions: 64,
            epochs: 3,
            seed: 5,
            ..Default::default()
        };
        let mut trainer = DdpTrainer::new(
            g,
            &train,
            || XFraudDetector::new(DetectorConfig::small(fd, 3)),
            cfg,
        );
        trainer
            .fit(g, &test, &SageSampler::new(2, 6))
            .last()
            .unwrap()
            .val_auc
    };
    let few = auc_for(2);
    let many = auc_for(16);
    assert!(
        many <= few + 0.05,
        "16 workers ({many:.3}) should not outlearn 2 workers ({few:.3}) per epoch"
    );
}
