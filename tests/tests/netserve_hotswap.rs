//! Detector hot-swap under live network load: `swap_detector` on the
//! served engine must never drop, misorder, or *tear* a response. Every
//! response observed during the swap matches — in its entirety — either
//! the old detector's reference vector or the new one; after the swap,
//! responses match a fresh engine built with the new weights.
//!
//! Tearing is the subtle failure: the engine pins one detector view per
//! micro-batch and clears the score cache under the swap's write lock, so
//! a response can never mix old-weight and new-weight scores.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use xfraud::datagen::{Dataset, DatasetPreset};
use xfraud::gnn::{CommunitySampler, DetectorConfig, XFraudDetector};
use xfraud::hetgraph::NodeId;
use xfraud::netserve::{NetServer, ScoreClient, ScoreOutcome, ServerConfig};
use xfraud::serve::ScoringEngine;

const GRAPH_SEED: u64 = 23;
const OLD_SEED: u64 = 5;
const NEW_SEED: u64 = 6;

fn graph() -> xfraud::hetgraph::HetGraph {
    Dataset::generate(DatasetPreset::EbaySmallSim, GRAPH_SEED).graph
}

fn detector(seed: u64) -> XFraudDetector {
    XFraudDetector::new(DetectorConfig::small(graph().feature_dim(), seed))
}

fn build_engine(seed: u64) -> Arc<ScoringEngine> {
    let engine = ScoringEngine::builder(
        detector(seed),
        graph(),
        Box::new(CommunitySampler::new(300)),
    )
    .seed(11)
    .build()
    .expect("engine builds");
    Arc::new(engine)
}

fn reference_bits(seed: u64, pool: &[NodeId]) -> Vec<u32> {
    let engine = build_engine(seed);
    engine
        .score(pool)
        .expect("reference scores")
        .iter()
        .map(|s| s.to_bits())
        .collect()
}

#[test]
fn hot_swap_under_load_never_tears_a_response() {
    let g = graph();
    let pool: Vec<NodeId> = g
        .labeled_txns()
        .into_iter()
        .map(|(v, _)| v)
        .take(8)
        .collect();
    let old_ref = reference_bits(OLD_SEED, &pool);
    let new_ref = reference_bits(NEW_SEED, &pool);
    assert_ne!(old_ref, new_ref, "the swap must be observable");

    let server =
        NetServer::start(build_engine(OLD_SEED), ServerConfig::default()).expect("server starts");
    let addr = server.local_addr();

    // Pre-swap sanity: the wire serves the old weights.
    let mut probe = ScoreClient::connect(addr, Duration::from_secs(10)).expect("connects");
    let bits = |outcome: ScoreOutcome| -> Vec<u32> {
        match outcome {
            ScoreOutcome::Scores(s) => s.iter().map(|v| v.to_bits()).collect(),
            ScoreOutcome::Rejected { status, error } => {
                panic!("unexpected rejection: {status} {error}")
            }
        }
    };
    assert_eq!(bits(probe.score("swap", &pool).expect("pre-swap")), old_ref);

    let stop = AtomicBool::new(false);
    let (old_hits, new_hits, total) = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for caller in 0..3usize {
            let pool = &pool;
            let (old_ref, new_ref, stop) = (&old_ref, &new_ref, &stop);
            handles.push(scope.spawn(move || {
                let mut client =
                    ScoreClient::connect(addr, Duration::from_secs(10)).expect("connects");
                let (mut old_n, mut new_n, mut sent) = (0u64, 0u64, 0u64);
                while !stop.load(Ordering::Relaxed) {
                    let got = bits(client.score("swap", pool).expect("request succeeds"));
                    sent += 1;
                    if got == *old_ref {
                        old_n += 1;
                    } else if got == *new_ref {
                        new_n += 1;
                    } else {
                        panic!(
                            "caller {caller}: torn response — matches neither detector \
                             entirely (old={old_ref:?} new={new_ref:?} got={got:?})"
                        );
                    }
                }
                (old_n, new_n, sent)
            }));
        }

        // Let the load establish, swap mid-flight, let it run on.
        std::thread::sleep(Duration::from_millis(150));
        server
            .engine()
            .swap_detector(detector(NEW_SEED))
            .expect("swap succeeds");
        std::thread::sleep(Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);

        let mut acc = (0u64, 0u64, 0u64);
        for h in handles {
            let (o, n, s) = h.join().expect("client thread");
            acc = (acc.0 + o, acc.1 + n, acc.2 + s);
        }
        acc
    });

    // Nothing dropped: every request produced exactly one classified
    // response; both weight generations were actually observed.
    assert_eq!(
        old_hits + new_hits,
        total,
        "every response old or new, none lost"
    );
    assert!(old_hits > 0, "load must observe the pre-swap detector");
    assert!(new_hits > 0, "load must observe the post-swap detector");

    // Post-swap steady state: the wire now matches a fresh engine built
    // with the new weights, bit for bit — including via the refilled cache.
    for _ in 0..2 {
        assert_eq!(
            bits(probe.score("swap", &pool).expect("post-swap")),
            new_ref
        );
    }
    let m = server.metrics();
    assert_eq!(m.responses_5xx, 0, "no errors across the swap: {m:?}");
    assert_eq!(m.responses_4xx, 0);
    server.shutdown();
}
