//! End-to-end guarantees of the streaming ingestion subsystem:
//!
//! * replaying a full WAL reproduces a **bit-identical** graph and
//!   bit-identical `ScoringEngine` scores (the crash-recovery contract);
//! * scoring over the live delta overlay equals scoring on the equivalent
//!   compacted `HetGraph`, for pre-existing and newly streamed
//!   transactions alike (the acceptance contract of `DeltaGraph`);
//! * a torn WAL tail is dropped, not a panic, and the log resumes cleanly
//!   from the durable prefix.

use std::path::PathBuf;
use std::sync::OnceLock;

use xfraud::datagen::{event_stream, flatten_events, generate_log, TxnArrival};
use xfraud::hetgraph::{DeltaGraph, NodeId};
use xfraud::ingest::{replay_dir, ShardedWal};
use xfraud::{Pipeline, PipelineConfig};

fn pipeline() -> &'static Pipeline {
    static PIPELINE: OnceLock<Pipeline> = OnceLock::new();
    PIPELINE.get_or_init(|| {
        let cfg = PipelineConfig::builder()
            .epochs(2)
            .build()
            .expect("valid config");
        Pipeline::run(cfg).expect("pipeline trains")
    })
}

/// Tomorrow's traffic: a second world from a shifted seed, emitted as a
/// time-ordered event stream on top of the trained base graph.
fn arrivals() -> &'static Vec<TxnArrival> {
    static ARRIVALS: OnceLock<Vec<TxnArrival>> = OnceLock::new();
    ARRIVALS.get_or_init(|| {
        let p = pipeline();
        let wcfg = p.cfg.preset.config(p.cfg.data_seed.wrapping_add(31));
        let world = generate_log(&wcfg);
        let mut a = event_stream(&world, &wcfg, p.dataset.graph.n_nodes());
        a.truncate(60);
        a
    })
}

fn temp_wal_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("xfraud-ingest-replay-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn full_log_replay_is_bit_identical() {
    let p = pipeline();
    let stream = arrivals();
    let events = flatten_events(stream);

    let dir = temp_wal_dir("full");
    let wal = ShardedWal::create(&dir, 3).expect("wal creates");
    for arrival in stream {
        wal.append_batch(&arrival.events).expect("append succeeds");
    }
    wal.sync().expect("sync succeeds");
    drop(wal);

    // The log round-trips the exact event sequence.
    let replay = replay_dir(&dir, None).expect("replay succeeds");
    assert_eq!(replay.events, events, "replayed events must round-trip");
    assert_eq!(replay.next_seq, events.len() as u64);
    assert_eq!(replay.dropped_torn, 0);
    assert_eq!(replay.dropped_after_gap, 0);

    // Bit-identical graph: live application vs replay application.
    let base = std::sync::Arc::new(p.dataset.graph.clone());
    let mut live = DeltaGraph::new(std::sync::Arc::clone(&base));
    for e in &events {
        live.apply(e).expect("live events apply");
    }
    let mut replayed = DeltaGraph::new(base);
    for e in &replay.events {
        replayed.apply(e).expect("replayed events apply");
    }
    assert_eq!(
        live.compact().expect("live compacts"),
        replayed.compact().expect("replay compacts"),
        "replayed graph must be bit-identical"
    );

    // Bit-identical scores: an engine fed the live stream vs an engine fed
    // the replayed log, probed on base transactions and every streamed one.
    let engine_live = p.serving_engine().build().expect("engine builds");
    for arrival in stream {
        engine_live
            .apply_events(&arrival.events)
            .expect("live apply");
    }
    let engine_replayed = p.serving_engine().build().expect("engine builds");
    engine_replayed
        .apply_events(&replay.events)
        .expect("replayed apply");

    let mut probes: Vec<NodeId> = p.test_nodes.iter().copied().take(6).collect();
    probes.extend(stream.iter().map(|a| a.txn_node));
    assert_eq!(
        engine_live.score(&probes).expect("live scores"),
        engine_replayed.score(&probes).expect("replayed scores"),
        "replayed engine must score bit-identically"
    );

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// The acceptance contract of the delta overlay: scoring over the overlay
/// is bit-identical to scoring on the equivalent compacted `HetGraph` —
/// for transactions that predate the stream and for the streamed ones.
#[test]
fn overlay_scoring_equals_compacted_scoring() {
    let p = pipeline();
    let stream = arrivals();

    let engine = p.serving_engine().build().expect("engine builds");
    for arrival in stream {
        engine.apply_events(&arrival.events).expect("events apply");
    }
    // Probe both sides of the base/overlay boundary: transactions frozen
    // into the trained base and every newly streamed one.
    let mut probes: Vec<NodeId> = p.test_nodes.iter().copied().take(6).collect();
    probes.extend(stream.iter().map(|a| a.txn_node));
    let over_overlay = engine.score(&probes).expect("overlay scores");

    let (on, oe) = engine.overlay_stats();
    assert!(on > 0 && oe > 0, "stream must have grown the overlay");
    engine.compact().expect("compaction succeeds");
    assert_eq!(engine.overlay_stats(), (0, 0));
    let over_compacted = engine.score(&probes).expect("compacted scores");
    assert_eq!(
        over_overlay, over_compacted,
        "overlay and compacted scoring must be bit-identical"
    );
}

#[test]
fn truncated_tail_is_dropped_and_log_resumes() {
    let stream = arrivals();
    let events = flatten_events(stream);

    let dir = temp_wal_dir("torn");
    let wal = ShardedWal::create(&dir, 2).expect("wal creates");
    for e in &events {
        wal.append(e).expect("append succeeds");
    }
    wal.sync().expect("sync succeeds");
    drop(wal);

    // Replay-to-offset returns exactly the requested prefix.
    let k = (events.len() / 2) as u64;
    let partial = replay_dir(&dir, Some(k)).expect("offset replay succeeds");
    assert_eq!(partial.events, events[..k as usize]);

    // Tear the tail of one shard mid-record, as a crash mid-write would.
    let shard = dir.join("wal-0001.log");
    let len = std::fs::metadata(&shard).expect("shard exists").len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(&shard)
        .expect("shard opens")
        .set_len(len - 5)
        .expect("truncate");

    // Recovery: no panic, the surviving events are a clean prefix.
    let replay = replay_dir(&dir, None).expect("torn replay succeeds");
    assert!(replay.dropped_torn >= 1, "the torn record must be counted");
    let n = replay.events.len();
    assert!(n < events.len(), "the torn tail must be dropped");
    assert_eq!(replay.events, events[..n], "survivors form a clean prefix");
    assert_eq!(replay.next_seq, n as u64);

    // Resume: reopen, re-append the lost suffix, and the log is whole.
    let (wal, recovered) = ShardedWal::open(&dir).expect("log reopens");
    assert_eq!(recovered.next_seq, n as u64);
    for e in &events[n..] {
        wal.append(e).expect("resumed append succeeds");
    }
    wal.sync().expect("sync succeeds");
    drop(wal);
    let healed = replay_dir(&dir, None).expect("healed replay succeeds");
    assert_eq!(
        healed.events, events,
        "resumed log must hold the full stream"
    );
    assert_eq!(healed.dropped_torn, 0);

    std::fs::remove_dir_all(&dir).expect("cleanup");
}
