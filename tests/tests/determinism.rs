//! Reproducibility: every stochastic stage is keyed by explicit seeds, so
//! identical configurations must produce bit-identical artefacts — datasets,
//! trained metrics and explanations.

use xfraud::datagen::{Dataset, DatasetPreset};
use xfraud::explain::{ExplainerConfig, GnnExplainer};
use xfraud::gnn::Model;
use xfraud::hetgraph::GraphStats;
use xfraud::{Pipeline, PipelineConfig};

#[test]
fn datasets_are_bit_identical_per_seed() {
    let a = Dataset::generate(DatasetPreset::EbaySmallSim, 12);
    let b = Dataset::generate(DatasetPreset::EbaySmallSim, 12);
    assert_eq!(GraphStats::of(&a.graph), GraphStats::of(&b.graph));
    assert_eq!(a.graph.features(), b.graph.features());
    assert_eq!(a.node_risk, b.node_risk);
    let c = Dataset::generate(DatasetPreset::EbaySmallSim, 13);
    assert_ne!(a.graph.features(), c.graph.features());
}

#[test]
fn trained_pipelines_are_reproducible() {
    let cfg = || {
        PipelineConfig::builder()
            .epochs(2)
            .build()
            .expect("valid config")
    };
    let p1 = Pipeline::run(cfg()).expect("pipeline trains");
    let p2 = Pipeline::run(cfg()).expect("pipeline trains");
    assert_eq!(
        p1.detector.store().max_param_diff(p2.detector.store()),
        0.0,
        "training must be deterministic"
    );
    let (auc1, _, _) = p1.test_metrics();
    let (auc2, _, _) = p2.test_metrics();
    assert_eq!(auc1, auc2);
}

#[test]
fn explanations_are_reproducible() {
    let cfg = PipelineConfig::builder()
        .epochs(2)
        .build()
        .expect("valid config");
    let p = Pipeline::run(cfg).expect("pipeline trains");
    let comms = p
        .sample_communities(1, 8, 200, 9)
        .expect("sampling succeeds");
    let community = &comms[0];
    let cfg = ExplainerConfig {
        epochs: 15,
        ..Default::default()
    };
    let w1 = GnnExplainer::new(&p.detector, cfg.clone())
        .explain_community(community)
        .1;
    let w2 = GnnExplainer::new(&p.detector, cfg)
        .explain_community(community)
        .1;
    assert_eq!(w1, w2);
}
