//! The network service's headline guarantee: **scores fetched over the
//! wire are bit-identical to `ScoringEngine::score` in-process** — for any
//! request size, any number of concurrent clients, and any micro-batch
//! configuration on the served engine.
//!
//! The reference is the strictest one available: a *separately built*
//! engine scoring one transaction at a time. Matching it proves both the
//! engine's cross-instance determinism and the wire codec's f32 fidelity
//! (JSON numbers round-trip shortest-form, parsed straight to `f32` with
//! no double rounding).

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use xfraud::datagen::{Dataset, DatasetPreset};
use xfraud::gnn::{CommunitySampler, DetectorConfig, XFraudDetector};
use xfraud::hetgraph::NodeId;
use xfraud::netserve::{NetServer, ScoreClient, ScoreOutcome, ServerConfig};
use xfraud::serve::ScoringEngine;

const GRAPH_SEED: u64 = 23;
const DETECTOR_SEED: u64 = 5;
const ENGINE_SEED: u64 = 11;

/// A fresh engine over the same (deterministically generated) graph and
/// detector weights; `max_batch` varies so coalescing boundaries move.
fn build_engine(max_batch: usize, cache: bool) -> Arc<ScoringEngine> {
    let g = Dataset::generate(DatasetPreset::EbaySmallSim, GRAPH_SEED).graph;
    let detector = XFraudDetector::new(DetectorConfig::small(g.feature_dim(), DETECTOR_SEED));
    let mut builder = ScoringEngine::builder(detector, g, Box::new(CommunitySampler::new(300)))
        .seed(ENGINE_SEED)
        .max_batch(max_batch);
    if !cache {
        builder = builder.no_cache();
    }
    Arc::new(builder.build().expect("engine builds"))
}

fn pool() -> Vec<NodeId> {
    let g = Dataset::generate(DatasetPreset::EbaySmallSim, GRAPH_SEED).graph;
    g.labeled_txns()
        .into_iter()
        .map(|(v, _)| v)
        .take(10)
        .collect()
}

/// Sequential one-at-a-time reference bits, computed once from an engine
/// that never serves a socket.
fn reference() -> &'static Vec<(NodeId, u32)> {
    static REF: OnceLock<Vec<(NodeId, u32)>> = OnceLock::new();
    REF.get_or_init(|| {
        let engine = build_engine(1, false);
        pool()
            .into_iter()
            .map(|t| {
                let s = engine.score(&[t]).expect("reference scores")[0];
                (t, s.to_bits())
            })
            .collect()
    })
}

fn expected_bits(t: NodeId) -> u32 {
    reference()
        .iter()
        .find(|&&(id, _)| id == t)
        .map(|&(_, b)| b)
        .expect("txn in reference pool")
}

fn score_bits(client: &mut ScoreClient, ids: &[NodeId]) -> Vec<u32> {
    match client.score("equiv", ids).expect("request succeeds") {
        ScoreOutcome::Scores(s) => s.iter().map(|v| v.to_bits()).collect(),
        ScoreOutcome::Rejected { status, error } => {
            panic!("unexpected rejection: {status} {error}")
        }
    }
}

/// One client, every request-size split of the pool: chunked requests of
/// 1, 2, 3 and the whole pool all return the one-at-a-time bits, with and
/// without the score cache.
#[test]
fn request_size_never_changes_the_bits() {
    let ids = pool();
    for cache in [true, false] {
        let engine = build_engine(8, cache);
        let server = NetServer::start(engine, ServerConfig::default()).expect("server starts");
        let mut client =
            ScoreClient::connect(server.local_addr(), Duration::from_secs(10)).expect("connects");
        for chunk in [1usize, 2, 3, ids.len()] {
            for part in ids.chunks(chunk) {
                let got = score_bits(&mut client, part);
                for (&t, &b) in part.iter().zip(&got) {
                    assert_eq!(
                        b,
                        expected_bits(t),
                        "txn {t} diverged over the wire (chunk={chunk} cache={cache})"
                    );
                }
            }
        }
        server.shutdown();
    }
}

/// Concurrent clients against a tiny micro-batch budget: requests from
/// different connections coalesce into shared batches and split across
/// batch boundaries, yet every response carries the reference bits.
#[test]
fn concurrent_clients_across_micro_batch_boundaries() {
    let ids = pool();
    // max_batch below the request count forces multi-request coalescing to
    // spill over batch edges; cache on maximises cross-request sharing.
    let engine = build_engine(3, true);
    let server = NetServer::start(engine, ServerConfig::default()).expect("server starts");
    let addr = server.local_addr();

    std::thread::scope(|scope| {
        for caller in 0..4usize {
            let ids = &ids;
            scope.spawn(move || {
                let mut client =
                    ScoreClient::connect(addr, Duration::from_secs(10)).expect("connects");
                // Each caller rotates the pool differently so overlapping
                // (but unequal) id sets race through the batcher; two
                // passes hit both the miss and the hit path.
                let rotated: Vec<NodeId> = (0..ids.len())
                    .map(|i| ids[(i + caller) % ids.len()])
                    .collect();
                for pass in 0..2 {
                    for chunk in rotated.chunks(1 + caller) {
                        let got = score_bits(&mut client, chunk);
                        for (&t, &b) in chunk.iter().zip(&got) {
                            assert_eq!(
                                b,
                                expected_bits(t),
                                "caller {caller} pass {pass} txn {t} diverged under concurrency"
                            );
                        }
                    }
                }
            });
        }
    });

    let m = server.metrics();
    assert_eq!(m.responses_5xx, 0, "no server errors under concurrent load");
    assert_eq!(m.responses_4xx, 0, "no rejected requests");
    server.shutdown();
}

/// Duplicate ids inside one request each get the same (reference) bits —
/// the dedup inside the batcher must fan results back out faithfully.
#[test]
fn duplicate_ids_fan_back_out_bit_identical() {
    let ids = pool();
    let engine = build_engine(8, true);
    let server = NetServer::start(engine, ServerConfig::default()).expect("server starts");
    let mut client =
        ScoreClient::connect(server.local_addr(), Duration::from_secs(10)).expect("connects");
    let dup: Vec<NodeId> = vec![ids[0], ids[1], ids[0], ids[2], ids[1], ids[0]];
    let got = score_bits(&mut client, &dup);
    assert_eq!(got.len(), dup.len());
    for (&t, &b) in dup.iter().zip(&got) {
        assert_eq!(b, expected_bits(t), "duplicated txn {t} diverged");
    }
    server.shutdown();
}
