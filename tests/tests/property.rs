//! Workspace-level property tests (proptest) over the core invariants.

use std::rc::Rc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use xfraud::datagen::{Dataset, DatasetPreset};
use xfraud::explain::topk_hit_rate;
use xfraud::gnn::{HgSampler, SageSampler, Sampler, SubgraphBatch};
use xfraud::hetgraph::{DeltaGraph, GraphBuilder, GraphEvent, HetGraph, NodeType};
use xfraud::kvstore::{KvStore, ShardedStore, SingleLockStore};
use xfraud::metrics::{roc_auc, roc_curve, trapezoid_area};
use xfraud::tensor::{Tape, Tensor};

/// One shared graph for the sampler properties — dataset generation is far
/// more expensive than a sampler call, so building it per case would
/// dominate the suite.
fn sampler_graph() -> &'static HetGraph {
    static G: std::sync::OnceLock<HetGraph> = std::sync::OnceLock::new();
    G.get_or_init(|| Dataset::generate(DatasetPreset::EbaySmallSim, 4).graph)
}

/// The invariants any sampled batch must satisfy, whatever the sampler:
/// every seed is a target (in order), nodes appear at most once, and every
/// batch edge is the image of a real graph edge between in-batch nodes.
fn assert_batch_invariants(g: &HetGraph, seeds: &[usize], batch: &SubgraphBatch) {
    assert!(batch.validate());
    assert_eq!(batch.targets.len(), seeds.len());
    for (i, &s) in seeds.iter().enumerate() {
        assert_eq!(batch.global_ids[batch.targets[i]], s, "seed {s} lost");
    }
    let mut ids = batch.global_ids.clone();
    ids.sort_unstable();
    let n_before = ids.len();
    ids.dedup();
    assert_eq!(ids.len(), n_before, "duplicate nodes in batch");
    for (&ls, &ld) in batch.edge_src.iter().zip(&batch.edge_dst) {
        assert!(ls < batch.n_nodes() && ld < batch.n_nodes());
        let (gs, gd) = (batch.global_ids[ls], batch.global_ids[ld]);
        assert!(
            g.neighbors(gs).any(|u| u == gd),
            "batch edge {gs}->{gd} has no graph counterpart"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// AUC is bounded, symmetric under score negation (1 - auc) and agrees
    /// with the trapezoid area under the ROC curve.
    #[test]
    fn auc_invariants(scores in prop::collection::vec(0.0f32..1.0, 4..60),
                      labels in prop::collection::vec(any::<bool>(), 4..60)) {
        let n = scores.len().min(labels.len());
        let scores = &scores[..n];
        let labels = &labels[..n];
        let auc = roc_auc(scores, labels);
        prop_assert!((0.0..=1.0).contains(&auc));
        let area = trapezoid_area(&roc_curve(scores, labels));
        let both = labels.iter().any(|&y| y) && labels.iter().any(|&y| !y);
        if both {
            prop_assert!((auc - area).abs() < 1e-9, "auc {auc} vs area {area}");
            let neg: Vec<f32> = scores.iter().map(|s| -s).collect();
            let flipped = roc_auc(&neg, labels);
            prop_assert!((auc + flipped - 1.0).abs() < 1e-9);
        }
    }

    /// Top-k hit rate is bounded, 1 against itself, and symmetric.
    #[test]
    fn hit_rate_invariants(a in prop::collection::vec(0.0f64..10.0, 2..40),
                           k in 1usize..10) {
        let b: Vec<f64> = a.iter().rev().copied().collect();
        let h = topk_hit_rate(&a, &b, k);
        prop_assert!((0.0..=1.0).contains(&h));
        prop_assert!((topk_hit_rate(&a, &a, k) - 1.0).abs() < 1e-12);
        prop_assert!((topk_hit_rate(&a, &b, k) - topk_hit_rate(&b, &a, k)).abs() < 1e-12);
    }

    /// Matmul gradients match finite differences on random shapes.
    #[test]
    fn matmul_gradcheck(m in 1usize..5, k in 1usize..5, n in 1usize..5, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a0 = Tensor::rand_uniform(m, k, -1.0, 1.0, &mut rng);
        let b0 = Tensor::rand_uniform(k, n, -1.0, 1.0, &mut rng);
        let forward = |a: &Tensor| {
            let mut t = Tape::new();
            let av = t.leaf(a.clone(), true);
            let bv = t.leaf(b0.clone(), false);
            let c = t.matmul(av, bv);
            let s = t.sum_all(c);
            t.value(s).item()
        };
        // Analytic gradient.
        let mut t = Tape::new();
        let av = t.leaf(a0.clone(), true);
        let bv = t.leaf(b0.clone(), false);
        let c = t.matmul(av, bv);
        let s = t.sum_all(c);
        t.backward(s);
        let ga = t.grad(av).unwrap().clone();
        // Finite difference on one random element.
        let r = seed as usize % m;
        let cidx = (seed as usize / 7) % k;
        let h = 1e-2f32;
        let mut plus = a0.clone();
        plus.set(r, cidx, a0.get(r, cidx) + h);
        let mut minus = a0.clone();
        minus.set(r, cidx, a0.get(r, cidx) - h);
        let num = (forward(&plus) - forward(&minus)) / (2.0 * h);
        prop_assert!((ga.get(r, cidx) - num).abs() < 5e-2,
            "analytic {} vs numeric {}", ga.get(r, cidx), num);
    }

    /// Segment softmax output sums to one per segment/column for arbitrary
    /// segment assignments.
    #[test]
    fn segment_softmax_partition_of_unity(
        rows in 1usize..30, cols in 1usize..5, nseg in 1usize..6, seed in 0u64..1000
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::rand_uniform(rows, cols, -3.0, 3.0, &mut rng);
        let seg: Rc<Vec<usize>> = Rc::new((0..rows).map(|i| i % nseg).collect());
        let mut t = Tape::new();
        let xv = t.leaf(x, false);
        let y = t.segment_softmax(xv, Rc::clone(&seg), nseg);
        let v = t.value(y);
        for s in 0..nseg.min(rows) {
            for c in 0..cols {
                let sum: f32 = (0..rows).filter(|&r| seg[r] == s).map(|r| v.get(r, c)).sum();
                prop_assert!((sum - 1.0).abs() < 1e-4, "segment {s} col {c} sums to {sum}");
            }
        }
    }

    /// KV stores behave like a map: last write wins, across both
    /// implementations, for arbitrary operation sequences.
    #[test]
    fn kv_stores_match_btreemap_oracle(
        ops in prop::collection::vec((0u8..20, prop::collection::vec(any::<u8>(), 0..8)), 1..60)
    ) {
        let single = SingleLockStore::new();
        let sharded = ShardedStore::new(4);
        let mut oracle = std::collections::BTreeMap::new();
        for (key, value) in &ops {
            let k = [*key];
            single.put(&k, value);
            sharded.put(&k, value);
            oracle.insert(k.to_vec(), value.clone());
        }
        for (k, v) in &oracle {
            let got_single = single.get(k);
            let got_sharded = sharded.get(k);
            prop_assert_eq!(got_single.as_deref(), Some(v.as_slice()));
            prop_assert_eq!(got_sharded.as_deref(), Some(v.as_slice()));
        }
        prop_assert_eq!(single.len(), oracle.len());
        prop_assert_eq!(sharded.len(), oracle.len());
    }

    /// Induced subgraphs preserve node types, labels and the link subset
    /// relation for arbitrary keep-sets.
    #[test]
    fn induced_subgraph_is_consistent(keep_mask in prop::collection::vec(any::<bool>(), 12)) {
        let mut b = GraphBuilder::new(1);
        let mut txns = Vec::new();
        for i in 0..6 {
            txns.push(b.add_txn([i as f32], Some(i % 2 == 0)));
        }
        let p0 = b.add_entity(NodeType::Pmt);
        let p1 = b.add_entity(NodeType::Email);
        let a0 = b.add_entity(NodeType::Addr);
        let u0 = b.add_entity(NodeType::Buyer);
        let _ = b.add_entity(NodeType::Addr);
        let _ = b.add_entity(NodeType::Buyer);
        for (i, &t) in txns.iter().enumerate() {
            b.link(t, if i % 2 == 0 { p0 } else { p1 }).unwrap();
            b.link(t, a0).unwrap();
            if i < 3 { b.link(t, u0).unwrap(); }
        }
        let g = b.finish().unwrap();
        let keep: Vec<usize> =
            (0..g.n_nodes()).filter(|&v| keep_mask[v % keep_mask.len()]).collect();
        let (sub, map) = g.induced_subgraph(&keep);
        prop_assert!(sub.validate());
        prop_assert_eq!(sub.n_nodes(), keep.len());
        for (new, &old) in keep.iter().enumerate() {
            prop_assert_eq!(map[old], Some(new));
            prop_assert_eq!(sub.node_type(new), g.node_type(old));
            prop_assert_eq!(sub.label(new), g.label(old));
        }
        prop_assert!(sub.n_links() <= g.n_links());
    }
}

// Sampler invariants get their own block with fewer cases: each case runs
// two samplers over a realistic graph, which is much heavier than the
// metric/tensor properties above.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever shape and RNG: every seed stays a target, no node enters a
    /// batch twice, and every batch edge exists in the underlying graph.
    #[test]
    fn sage_sampler_batches_hold_invariants(
        seed in 0u64..10_000, hops in 1usize..4, per_hop in 1usize..9, n_seeds in 1usize..12
    ) {
        let g = sampler_graph();
        let labeled = g.labeled_txns();
        let offset = (seed as usize).wrapping_mul(13) % labeled.len().max(1);
        let seeds: Vec<usize> = labeled
            .iter()
            .cycle()
            .skip(offset)
            .take(n_seeds)
            .map(|&(v, _)| v)
            .collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assume!(dedup.len() == seeds.len());
        let mut rng = StdRng::seed_from_u64(seed);
        let batch = SageSampler::new(hops, per_hop).sample(g, &seeds, &mut rng);
        assert_batch_invariants(g, &seeds, &batch);
    }

    /// The same invariants for the HGSampling path of the original
    /// detector (type-balanced, budget-driven).
    #[test]
    fn hg_sampler_batches_hold_invariants(
        seed in 0u64..10_000, steps in 1usize..3, width in 1usize..5, n_seeds in 1usize..8
    ) {
        let g = sampler_graph();
        let labeled = g.labeled_txns();
        let offset = (seed as usize).wrapping_mul(17) % labeled.len().max(1);
        let seeds: Vec<usize> = labeled
            .iter()
            .cycle()
            .skip(offset)
            .take(n_seeds)
            .map(|&(v, _)| v)
            .collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assume!(dedup.len() == seeds.len());
        let mut rng = StdRng::seed_from_u64(seed);
        let batch = HgSampler::new(steps, width).sample(g, &seeds, &mut rng);
        assert_batch_invariants(g, &seeds, &batch);
    }
}

/// Feature width of the event-interleaving properties below.
const EVT_DIM: usize = 3;

/// Interprets a raw proptest op tape into a *valid* `GraphEvent` sequence:
/// links and labels only ever target nodes that already exist, and links
/// respect the txn↔entity schema (in either endpoint order). The tape
/// itself is arbitrary, so event counts, interleavings, duplicate links
/// and label rewrites all vary freely.
fn events_from_tape(tape: &[(u8, u8, u8, f32)]) -> Vec<GraphEvent> {
    let mut events = Vec::with_capacity(tape.len());
    let mut txns: Vec<usize> = Vec::new();
    let mut entities: Vec<usize> = Vec::new();
    let mut next_id = 0usize;
    for &(op, s1, s2, x) in tape {
        match op % 4 {
            0 => {
                let label = match s1 % 3 {
                    0 => None,
                    1 => Some(false),
                    _ => Some(true),
                };
                events.push(GraphEvent::AddTxn {
                    features: vec![x, x * 0.5, s2 as f32 * 0.01],
                    label,
                });
                txns.push(next_id);
                next_id += 1;
            }
            1 => {
                let ty = [
                    NodeType::Pmt,
                    NodeType::Email,
                    NodeType::Addr,
                    NodeType::Buyer,
                ][s1 as usize % 4];
                events.push(GraphEvent::AddEntity { ty });
                entities.push(next_id);
                next_id += 1;
            }
            2 if !txns.is_empty() && !entities.is_empty() => {
                let t = txns[s1 as usize % txns.len()];
                let e = entities[s2 as usize % entities.len()];
                // Either endpoint order is schema-legal; exercise both.
                let (a, b) = if x < 0.5 { (t, e) } else { (e, t) };
                events.push(GraphEvent::Link { a, b });
            }
            3 if !txns.is_empty() => {
                let label = match s2 % 3 {
                    0 => None,
                    1 => Some(false),
                    _ => Some(true),
                };
                events.push(GraphEvent::Label {
                    node: txns[s1 as usize % txns.len()],
                    label,
                });
            }
            _ => {} // link/label with no legal target: skip
        }
    }
    events
}

/// The from-scratch reference `DeltaGraph::compact` must reproduce: replay
/// the events through `GraphBuilder` with each transaction carrying its
/// *final* label (builders have no label rewrites — a batch build only ever
/// sees the settled state).
fn reference_build(events: &[GraphEvent]) -> HetGraph {
    enum Node {
        Txn(Vec<f32>, Option<bool>),
        Entity(NodeType),
    }
    let mut nodes: Vec<Node> = Vec::new();
    let mut links: Vec<(usize, usize)> = Vec::new();
    for e in events {
        match e {
            GraphEvent::AddTxn { features, label } => {
                nodes.push(Node::Txn(features.clone(), *label))
            }
            GraphEvent::AddEntity { ty } => nodes.push(Node::Entity(*ty)),
            GraphEvent::Link { a, b } => links.push((*a, *b)),
            GraphEvent::Label { node, label } => match &mut nodes[*node] {
                Node::Txn(_, l) => *l = *label,
                Node::Entity(_) => panic!("tape never labels entities"),
            },
        }
    }
    let mut b = GraphBuilder::new(EVT_DIM);
    for node in &nodes {
        match node {
            Node::Txn(f, l) => {
                b.add_txn(f, *l);
            }
            Node::Entity(ty) => {
                b.add_entity(*ty);
            }
        }
    }
    for &(a, bb) in &links {
        b.link(a, bb).expect("tape links are schema-valid");
    }
    b.finish().expect("reference build succeeds")
}

// Overlay-correctness properties: compaction must be a pure representation
// change, whatever the event interleaving and wherever the base/overlay
// boundary falls. `HetGraph` derives `PartialEq` over every array (types,
// labels, features, both CSR rings), so one assert covers the lot.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `DeltaGraph::compact()` on a from-empty overlay equals the
    /// `GraphBuilder` build of the same records, and validates.
    #[test]
    fn compact_equals_from_scratch_build(
        tape in prop::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), 0.0f32..1.0), 1..80),
    ) {
        let events = events_from_tape(&tape);
        let mut delta = DeltaGraph::empty(EVT_DIM);
        for e in &events {
            delta.apply(e).expect("tape events are valid");
        }
        let compacted = delta.compact().expect("compaction succeeds");
        prop_assert!(compacted.validate());
        prop_assert_eq!(compacted, reference_build(&events));
    }

    /// Lock-free epoch-pinned snapshot reads observe exactly a prefix state:
    /// while a writer thread publishes event batches (interleaved with
    /// `compact()` republications) through an `EpochCell`, concurrent readers
    /// pin snapshots and flatten their adjacency. Every flattened CSR must be
    /// bit-identical to a quiesced rebuild of the same event prefix —
    /// compaction being a pure representation change, readers cannot even
    /// tell whether they pinned pre- or post-compact.
    #[test]
    fn concurrent_snapshot_reads_match_quiesced_rebuild(
        tape in prop::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), 0.0f32..1.0), 4..60),
        n_batches in 2usize..5,
        compact_mask in any::<u8>(),
    ) {
        use std::sync::atomic::{AtomicBool, Ordering};
        use xfraud::hetgraph::EpochCell;
        use xfraud::kernels::FlatCsr;

        let events = events_from_tape(&tape);
        prop_assume!(!events.is_empty());
        let batch_len = events.len().div_ceil(n_batches);
        let batches: Vec<&[GraphEvent]> = events.chunks(batch_len).collect();

        // (prefix length in batches, live graph)
        let cell = EpochCell::new((0usize, DeltaGraph::empty(EVT_DIM)));
        let done = AtomicBool::new(false);
        let mut observed: Vec<(usize, FlatCsr)> = Vec::new();

        std::thread::scope(|s| {
            let readers: Vec<_> = (0..2)
                .map(|_| {
                    let cell = &cell;
                    let done = &done;
                    s.spawn(move || {
                        let mut seen = Vec::new();
                        while !done.load(Ordering::Acquire) && seen.len() < 10_000 {
                            let live = cell.pin();
                            let flat = FlatCsr::from_view(&live.1)
                                .expect("test graphs fit the u32 arena");
                            seen.push((live.0, flat));
                        }
                        seen
                    })
                })
                .collect();

            for (i, batch) in batches.iter().enumerate() {
                cell.update(|cur| {
                    let mut g = cur.1.clone();
                    for e in *batch {
                        g.apply(e).expect("tape events are valid");
                    }
                    ((i + 1, g), ())
                });
                if compact_mask >> (i % 8) & 1 == 1 {
                    cell.update(|cur| {
                        let frozen = cur.1.clone().compact().expect("compaction succeeds");
                        ((cur.0, DeltaGraph::new(std::sync::Arc::new(frozen))), ())
                    });
                }
            }
            done.store(true, Ordering::Release);
            for r in readers {
                observed.extend(r.join().expect("reader thread joins"));
            }
        });

        // Quiesced reference per prefix: replay the first k batches serially.
        let mut reference = Vec::with_capacity(batches.len() + 1);
        let mut g = DeltaGraph::empty(EVT_DIM);
        reference.push(FlatCsr::from_view(&g).expect("fits"));
        for batch in &batches {
            for e in *batch {
                g.apply(e).expect("tape events are valid");
            }
            reference.push(FlatCsr::from_view(&g).expect("fits"));
        }
        for (prefix, flat) in &observed {
            prop_assert_eq!(
                flat, &reference[*prefix],
                "snapshot at prefix {} diverged from quiesced rebuild", prefix
            );
        }
    }

    /// The same holds when the stream is cut at an arbitrary point into a
    /// compacted base plus a live overlay — including label rewrites in the
    /// suffix that override labels frozen into the base.
    #[test]
    fn compact_is_split_invariant(
        tape in prop::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), 0.0f32..1.0), 2..80),
        cut in any::<u16>(),
    ) {
        let events = events_from_tape(&tape);
        let cut = cut as usize % (events.len() + 1);
        let mut prefix = DeltaGraph::empty(EVT_DIM);
        for e in &events[..cut] {
            prefix.apply(e).expect("prefix applies");
        }
        let base = prefix.compact().expect("base compaction succeeds");
        let mut overlay = DeltaGraph::new(std::sync::Arc::new(base));
        for e in &events[cut..] {
            overlay.apply(e).expect("suffix applies");
        }
        let compacted = overlay.compact().expect("overlay compaction succeeds");
        prop_assert!(compacted.validate());
        prop_assert_eq!(compacted, reference_build(&events));
    }
}
