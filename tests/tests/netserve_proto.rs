//! Protocol robustness for the network scoring service, as properties:
//! the JSON codec round-trips every request and every `f32` score vector
//! bit-for-bit, and **no sequence of bytes — arbitrary garbage or a
//! truncation of a valid message — makes any parser panic**. Malformed
//! bytes on a live socket cost exactly one typed 4xx, never the server.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use xfraud::datagen::{Dataset, DatasetPreset};
use xfraud::gnn::{CommunitySampler, DetectorConfig, XFraudDetector};
use xfraud::hetgraph::NodeId;
use xfraud::netserve::{
    http, json, proto, NetServer, ScoreClient, ScoreOutcome, ScoreRequest, ServerConfig,
};
use xfraud::serve::ScoringEngine;

fn tenant_strategy() -> impl Strategy<Value = String> {
    // Non-empty, within MAX_TENANT_LEN; lowercase ASCII needs no escaping.
    prop::collection::vec(97u8..123, 1..12)
        .prop_map(|v| String::from_utf8(v).unwrap_or_else(|_| "t".into()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Requests round-trip exactly: tenant and every id survive encoding.
    #[test]
    fn score_requests_round_trip(
        tenant in tenant_strategy(),
        ids in prop::collection::vec(0usize..1_000_000_000, 0..48),
    ) {
        let req = ScoreRequest { tenant, ids };
        let decoded = proto::decode_score_request(&proto::encode_score_request(&req))
            .expect("a freshly encoded request decodes");
        prop_assert_eq!(decoded, req);
    }

    /// Score vectors round-trip **bit-for-bit** — the property the whole
    /// network-equivalence contract rests on. JSON numbers are written in
    /// shortest round-trip form and parsed straight to `f32`, so no value
    /// is perturbed by the text representation.
    #[test]
    fn score_responses_round_trip_bit_exact(
        scores in prop::collection::vec(any::<f32>(), 0..48),
    ) {
        let decoded = proto::decode_score_response(&proto::encode_score_response(&scores))
            .expect("a freshly encoded response decodes");
        let got: Vec<u32> = decoded.scores.iter().map(|s| s.to_bits()).collect();
        let want: Vec<u32> = scores.iter().map(|s| s.to_bits()).collect();
        prop_assert_eq!(got, want);
    }

    /// Arbitrary bytes through every parser in the stack: a typed error or
    /// a clean value, never a panic.
    #[test]
    fn arbitrary_bytes_never_panic_any_parser(
        bytes in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        let _ = json::parse(&bytes);
        let _ = http::parse_request_head(&bytes, 1024 * 1024);
        let _ = http::parse_response_head(&bytes);
        let _ = proto::decode_score_request(&bytes);
        let _ = proto::decode_score_response(&bytes);
        let _ = proto::decode_error_body(&bytes);
    }

    /// Every truncation of a valid request body parses without panicking,
    /// and the untruncated body still decodes to the original.
    #[test]
    fn truncated_requests_never_panic(
        tenant in tenant_strategy(),
        ids in prop::collection::vec(0usize..1_000_000, 0..16),
    ) {
        let req = ScoreRequest { tenant, ids };
        let body = proto::encode_score_request(&req);
        for cut in 0..body.len() {
            prop_assert!(
                proto::decode_score_request(&body[..cut]).is_err(),
                "a strict prefix must not decode as complete"
            );
        }
        prop_assert_eq!(
            proto::decode_score_request(&body).expect("full body decodes"),
            req
        );
    }

    /// Deeply nested JSON is bounded by the depth limit, not the stack.
    #[test]
    fn pathological_nesting_is_rejected_not_overflowed(depth in 1usize..4000) {
        let mut doc = Vec::with_capacity(depth * 2 + 20);
        doc.extend_from_slice(br#"{"ids":"#);
        doc.extend(std::iter::repeat_n(b'[', depth));
        doc.extend(std::iter::repeat_n(b']', depth));
        doc.push(b'}');
        let parsed = json::parse(&doc);
        if depth > json::MAX_DEPTH {
            prop_assert!(parsed.is_err(), "nesting beyond MAX_DEPTH must be rejected");
        }
    }
}

// ---------------------------------------------------------------------------
// Live-socket robustness: the same guarantees through a real server.

fn engine() -> (Arc<ScoringEngine>, Vec<NodeId>) {
    let g = Dataset::generate(DatasetPreset::EbaySmallSim, 23).graph;
    let detector = XFraudDetector::new(DetectorConfig::small(g.feature_dim(), 5));
    let txns: Vec<NodeId> = g
        .labeled_txns()
        .into_iter()
        .map(|(v, _)| v)
        .take(4)
        .collect();
    let engine = ScoringEngine::builder(detector, g, Box::new(CommunitySampler::new(300)))
        .seed(11)
        .build()
        .expect("engine builds");
    (Arc::new(engine), txns)
}

/// Writes raw bytes, reads until the peer closes, returns the reply.
fn raw_exchange(addr: SocketAddr, bytes: &[u8]) -> Vec<u8> {
    let mut s = TcpStream::connect(addr).expect("connects");
    s.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    s.write_all(bytes).expect("writes");
    let mut out = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match s.read(&mut chunk) {
            Ok(0) | Err(_) => return out,
            Ok(n) => out.extend_from_slice(&chunk[..n]),
        }
    }
}

fn status_of(reply: &[u8]) -> u16 {
    http::parse_response_head(reply)
        .expect("server replies are well-formed HTTP")
        .expect("server replies carry a complete head")
        .status
}

/// Each class of malformed framing earns its documented status code, and
/// after the whole gauntlet the server still serves real scores.
#[test]
fn malformed_framing_gets_typed_4xx_and_server_survives() {
    let (eng, txns) = engine();
    let server = NetServer::start(eng, ServerConfig::default()).expect("server starts");
    let addr = server.local_addr();

    // Garbage bytes with a head terminator: 400 Bad Request.
    let mut garbage: Vec<u8> = (0u8..=255).collect();
    garbage.extend_from_slice(b"\r\n\r\n");
    assert_eq!(status_of(&raw_exchange(addr, &garbage)), 400);

    // An unknown method: 405.
    assert_eq!(
        status_of(&raw_exchange(
            addr,
            b"BREW /score HTTP/1.1\r\nContent-Length: 0\r\n\r\n"
        )),
        405
    );

    // A POST with no Content-Length: 411.
    assert_eq!(
        status_of(&raw_exchange(
            addr,
            b"POST /score HTTP/1.1\r\nHost: t\r\n\r\n"
        )),
        411
    );

    // A body beyond the configured cap: 413.
    assert_eq!(
        status_of(&raw_exchange(
            addr,
            b"POST /score HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n"
        )),
        413
    );

    // Chunked encoding is not implemented — a typed 501, not a hang.
    assert_eq!(
        status_of(&raw_exchange(
            addr,
            b"POST /score HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
        )),
        501
    );

    // A head that never ends: bounded by MAX_HEAD_BYTES, answered 431.
    let mut endless = b"POST /score HTTP/1.1\r\n".to_vec();
    while endless.len() <= http::MAX_HEAD_BYTES {
        endless.extend_from_slice(b"X-Padding: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
    }
    assert_eq!(status_of(&raw_exchange(addr, &endless)), 431);

    // The server took six kinds of abuse; real clients are unaffected.
    let mut client = ScoreClient::connect(addr, Duration::from_secs(10)).expect("connects");
    assert!(matches!(
        client.score("proto", &txns).expect("scores after abuse"),
        ScoreOutcome::Scores(_)
    ));
    let m = server.metrics();
    // The only 5xx in the gauntlet is the RFC-mandated 501 for chunked
    // transfer-encoding; nothing escalated to an internal error.
    assert_eq!(m.responses_5xx, 1, "only the deliberate 501: {m:?}");
    assert_eq!(
        m.responses_4xx, 5,
        "every framing abuse earned its 4xx: {m:?}"
    );
    server.shutdown();
}

/// Well-framed HTTP with a malformed JSON body is a *protocol* error, not
/// a framing error: 400 on a connection that stays open for the next
/// (valid) request.
#[test]
fn malformed_body_is_400_and_keeps_the_connection() {
    let (eng, txns) = engine();
    let server = NetServer::start(eng, ServerConfig::default()).expect("server starts");

    let mut s = TcpStream::connect(server.local_addr()).expect("connects");
    s.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");

    let bad_bodies: [&[u8]; 3] = [
        b"{\"ids\": [1, 2",                 // truncated JSON
        b"{\"ids\": \"not-an-array\"}",     // wrong type
        b"{\"tenant\": \"\", \"ids\": []}", // empty tenant
    ];
    let mut buf = Vec::new();
    for body in bad_bodies {
        let head = format!(
            "POST /score HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        s.write_all(head.as_bytes()).expect("writes head");
        s.write_all(body).expect("writes body");
        // Read exactly one response off the keep-alive stream.
        let head = loop {
            if let Some(h) = http::parse_response_head(&buf).expect("well-formed reply") {
                break h;
            }
            let mut chunk = [0u8; 4096];
            let n = s.read(&mut chunk).expect("reads");
            assert!(n > 0, "connection must stay open after a body error");
            buf.extend_from_slice(&chunk[..n]);
        };
        assert_eq!(head.status, 400);
        assert!(head.keep_alive, "a body error must not cost the connection");
        let total = head.head_len + head.content_length;
        while buf.len() < total {
            let mut chunk = [0u8; 4096];
            let n = s.read(&mut chunk).expect("reads body");
            assert!(n > 0);
            buf.extend_from_slice(&chunk[..n]);
        }
        buf.drain(..total);
    }

    // The same connection then serves a valid request.
    let body = proto::encode_score_request(&ScoreRequest {
        tenant: "proto".into(),
        ids: txns.clone(),
    });
    let head = format!(
        "POST /score HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    s.write_all(head.as_bytes()).expect("writes head");
    s.write_all(&body).expect("writes body");
    let head = loop {
        if let Some(h) = http::parse_response_head(&buf).expect("well-formed reply") {
            break h;
        }
        let mut chunk = [0u8; 4096];
        let n = s.read(&mut chunk).expect("reads");
        assert!(n > 0);
        buf.extend_from_slice(&chunk[..n]);
    };
    assert_eq!(head.status, 200, "the connection recovered for valid work");
    server.shutdown();
}
