//! Fault injection against the network scoring service: misbehaving
//! clients — slow-loris drips, half-closed sockets, mid-request
//! disconnects — must be reaped or served without blocking the batcher,
//! wedging a worker, or leaking an in-flight admission permit.
//!
//! The permit invariant is the load-bearing one: the scorer releases the
//! permit after `ScoringEngine::score` returns whether or not the
//! connection survived, so `in_flight` must always drain back to zero and
//! capacity must be fully recoverable after arbitrary disconnect abuse.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use xfraud::datagen::{Dataset, DatasetPreset};
use xfraud::gnn::{CommunitySampler, DetectorConfig, XFraudDetector};
use xfraud::hetgraph::NodeId;
use xfraud::netserve::{
    http, proto, NetServer, ScoreClient, ScoreOutcome, ScoreRequest, ServerConfig,
};
use xfraud::serve::ScoringEngine;

fn engine() -> (Arc<ScoringEngine>, Vec<NodeId>) {
    let g = Dataset::generate(DatasetPreset::EbaySmallSim, 23).graph;
    let detector = XFraudDetector::new(DetectorConfig::small(g.feature_dim(), 5));
    let txns: Vec<NodeId> = g
        .labeled_txns()
        .into_iter()
        .map(|(v, _)| v)
        .take(8)
        .collect();
    let engine = ScoringEngine::builder(detector, g, Box::new(CommunitySampler::new(300)))
        .seed(11)
        .build()
        .expect("engine builds");
    (Arc::new(engine), txns)
}

fn fault_cfg() -> ServerConfig {
    ServerConfig {
        read_timeout: Duration::from_millis(300),
        write_timeout: Duration::from_millis(500),
        idle_timeout: Duration::from_secs(5),
        shutdown_grace: Duration::from_secs(2),
        ..ServerConfig::default()
    }
}

fn score_request_bytes(ids: &[NodeId]) -> Vec<u8> {
    let body = proto::encode_score_request(&ScoreRequest {
        tenant: "faults".into(),
        ids: ids.to_vec(),
    });
    let mut req = format!(
        "POST /score HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    req.extend_from_slice(&body);
    req
}

fn raw_connect(addr: SocketAddr) -> TcpStream {
    let s = TcpStream::connect(addr).expect("connects");
    s.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    s
}

/// Reads until EOF (or read-timeout), returning whatever arrived.
fn read_to_close(s: &mut TcpStream) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match s.read(&mut chunk) {
            Ok(0) | Err(_) => return buf,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    }
}

fn status_of(response: &[u8]) -> Option<u16> {
    http::parse_response_head(response)
        .ok()
        .flatten()
        .map(|h| h.status)
}

/// Polls the in-flight gauge down to zero; panics if it never drains.
fn await_drain(server: &NetServer) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if server.metrics().in_flight == 0 {
            return;
        }
        assert!(Instant::now() < deadline, "in-flight permits never drained");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Polls until every abusive connection is gone *and* the permit gauge is
/// zero. `in_flight` alone is not enough: a just-accepted connection whose
/// request has not been parsed yet holds no permit but will dispatch one
/// later.
fn await_quiet(server: &NetServer, accepted: u64, live_clients: usize) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let m = server.metrics();
        // `conns_accepted` first: a connection sitting in the listen
        // backlog is invisible to the other gauges until adopted.
        if m.conns_accepted >= accepted && m.active_conns <= live_clients && m.in_flight == 0 {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "connections never settled: {m:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Two slow-loris connections (one stalled mid-head, one mid-body) are
/// reaped on the read deadline with a `408`, while a well-behaved client
/// on the same server keeps scoring throughout.
#[test]
fn slow_loris_is_reaped_while_good_clients_progress() {
    let (eng, txns) = engine();
    let server = NetServer::start(eng, fault_cfg()).expect("server starts");
    let addr = server.local_addr();

    let mut loris_head = raw_connect(addr);
    loris_head
        .write_all(b"POST /sco")
        .expect("drips a partial request line");

    let full = score_request_bytes(&txns[..2]);
    let mut loris_body = raw_connect(addr);
    // Head complete, body one byte short of Content-Length, then silence.
    loris_body
        .write_all(&full[..full.len() - 1])
        .expect("drips a partial body");

    // The good citizen completes several requests while the drips stall.
    let mut client = ScoreClient::connect(addr, Duration::from_secs(10)).expect("connects");
    for _ in 0..3 {
        assert!(matches!(
            client.score("good", &txns[..2]).expect("score succeeds"),
            ScoreOutcome::Scores(_)
        ));
    }

    // Outlive the 300ms read deadline with margin; the reaper answers 408
    // and closes (or, for a never-started request, closes silently).
    std::thread::sleep(Duration::from_millis(900));
    let head_answer = read_to_close(&mut loris_head);
    let body_answer = read_to_close(&mut loris_body);
    for answer in [&head_answer, &body_answer] {
        if let Some(status) = status_of(answer) {
            assert_eq!(status, 408, "a stalled started request gets 408");
        } else {
            assert!(
                answer.is_empty(),
                "non-HTTP bytes from the reaper: {answer:?}"
            );
        }
    }

    await_drain(&server);
    let m = server.metrics();
    assert!(
        m.timeouts_408 >= 1,
        "read-deadline reap must count a 408: {m:?}"
    );
    assert_eq!(m.responses_5xx, 0);
    // The good client's connection is still alive after the reaping.
    assert!(matches!(
        client.score("good", &txns[..1]).expect("still serving"),
        ScoreOutcome::Scores(_)
    ));
    server.shutdown();
}

/// A client that half-closes (FIN on its write side) after a complete
/// request still receives its full response: EOF mid-stream is not an
/// abort when the request was already framed.
#[test]
fn half_closed_connection_still_gets_its_response() {
    let (eng, txns) = engine();
    let direct = eng.score(&txns[..3]).expect("direct scores");
    let server = NetServer::start(eng, fault_cfg()).expect("server starts");

    let mut s = raw_connect(server.local_addr());
    s.write_all(&score_request_bytes(&txns[..3]))
        .expect("writes request");
    s.shutdown(Shutdown::Write).expect("half-close");

    let answer = read_to_close(&mut s);
    let head = http::parse_response_head(&answer)
        .expect("well-formed response")
        .expect("complete response head");
    assert_eq!(head.status, 200, "half-closed request is still served");
    let body = &answer[head.head_len..head.head_len + head.content_length];
    let scores = proto::decode_score_response(body)
        .expect("score body")
        .scores;
    let got: Vec<u32> = scores.iter().map(|v| v.to_bits()).collect();
    let want: Vec<u32> = direct.iter().map(|v| v.to_bits()).collect();
    assert_eq!(got, want, "half-close must not corrupt the response");

    await_drain(&server);
    server.shutdown();
}

/// Mid-request disconnects — sockets dropped right after dispatch, and
/// sockets dropped mid-body — never leak permits: with `max_inflight = 2`,
/// twelve abusive connections later the gauge drains to zero and a real
/// client still gets scores (leaked permits would mean permanent 503s).
#[test]
fn disconnects_never_leak_inflight_permits() {
    let (eng, txns) = engine();
    let cfg = ServerConfig {
        max_inflight: 2,
        score_threads: 2,
        ..fault_cfg()
    };
    let server = NetServer::start(eng, cfg).expect("server starts");
    let addr = server.local_addr();

    for round in 0..12 {
        let full = score_request_bytes(&txns[..4]);
        let mut s = raw_connect(addr);
        if round % 2 == 0 {
            // Complete request, vanish before the response.
            s.write_all(&full).expect("writes request");
        } else {
            // Vanish mid-body: the request never dispatches.
            s.write_all(&full[..full.len() / 2]).expect("writes half");
        }
        drop(s);
    }

    // Every abusive connection must be torn down — reaped or EOF-closed —
    // and every permit it ever acquired returned, before the survivor runs
    // against an otherwise-idle server.
    await_quiet(&server, 12, 0);
    let mut client = ScoreClient::connect(addr, Duration::from_secs(10)).expect("connects");
    for _ in 0..4 {
        match client
            .score("survivor", &txns[..2])
            .expect("request succeeds")
        {
            ScoreOutcome::Scores(s) => assert_eq!(s.len(), 2),
            ScoreOutcome::Rejected { status, error } => {
                panic!("capacity leaked: {status} {error} ({:?})", server.metrics())
            }
        }
    }
    let m = server.metrics();
    assert_eq!(m.in_flight, 0, "permits must fully drain: {m:?}");
    assert_eq!(m.responses_5xx, 0);
    server.shutdown();
}
