//! The serving engine's headline guarantee, asserted end-to-end as a
//! property: **for any number of concurrent callers, any micro-batch size
//! and any cache configuration, `ScoringEngine::score` returns exactly the
//! bits of the sequential `Pipeline::score_transaction`.**
//!
//! One pipeline is trained once and shared; each generated case builds an
//! engine with random knobs, hammers it from random concurrent request
//! streams, and compares every returned score against the sequential
//! reference.

use std::collections::HashMap;
use std::sync::OnceLock;

use proptest::prelude::*;

use xfraud::hetgraph::{NodeId, NodeType};
use xfraud::serve::ServeError;
use xfraud::{Error, Pipeline, PipelineConfig};

fn pipeline() -> &'static Pipeline {
    static PIPELINE: OnceLock<Pipeline> = OnceLock::new();
    PIPELINE.get_or_init(|| {
        let cfg = PipelineConfig::builder()
            .epochs(2)
            .build()
            .expect("valid config");
        Pipeline::run(cfg).expect("pipeline trains")
    })
}

/// The hot pool the random streams draw from, with the sequential
/// reference score of each — computed once.
fn reference() -> &'static (Vec<NodeId>, HashMap<NodeId, f32>) {
    static REF: OnceLock<(Vec<NodeId>, HashMap<NodeId, f32>)> = OnceLock::new();
    REF.get_or_init(|| {
        let p = pipeline();
        let pool: Vec<NodeId> = p.test_nodes.iter().copied().take(10).collect();
        let scores = pool
            .iter()
            .map(|&t| (t, p.score_transaction(t).expect("valid txn")))
            .collect();
        (pool, scores)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random concurrency × batching × caching ⇒ bit-identical scores.
    #[test]
    fn engine_equals_sequential_scoring(
        callers in 1usize..5,
        max_batch in 1usize..32,
        cache_on in any::<bool>(),
        stream in prop::collection::vec(0usize..10, 1..10),
    ) {
        let (pool, expected) = reference();
        let mut builder = pipeline().serving_engine().max_batch(max_batch);
        if !cache_on {
            builder = builder.no_cache();
        }
        let engine = builder.build().expect("engine builds");

        std::thread::scope(|scope| {
            for caller in 0..callers {
                let engine = &engine;
                let stream = &stream;
                scope.spawn(move || {
                    // Each caller rotates the shared stream differently, so
                    // streams overlap (duplicate pressure) without being
                    // identical; two passes exercise hit and miss paths.
                    let ids: Vec<NodeId> = stream
                        .iter()
                        .map(|&i| pool[(i + caller) % pool.len()])
                        .collect();
                    for pass in 0..2 {
                        let got = engine.score(&ids).expect("valid txns");
                        for (&t, &s) in ids.iter().zip(&got) {
                            assert_eq!(
                                s, expected[&t],
                                "caller {caller} pass {pass} txn {t}: engine diverged \
                                 (callers={callers} max_batch={max_batch} cache={cache_on})"
                            );
                        }
                    }
                });
            }
        });
    }
}

#[test]
fn invalidation_and_version_bumps_preserve_equivalence() {
    let (pool, expected) = reference();
    let engine = pipeline().serving_engine().build().expect("engine builds");
    engine.score(pool).expect("warm-up");
    engine.invalidate_transaction(pool[0]);
    engine.bump_graph_version();
    // The community sampler is RNG-free, so a version bump (which re-keys
    // the sampling streams) still reproduces the same subgraphs — scores
    // must stay equal to the sequential reference.
    let rescored = engine.score(pool).expect("valid txns");
    for (&t, &s) in pool.iter().zip(&rescored) {
        assert_eq!(s, expected[&t], "txn {t} after invalidation + version bump");
    }
}

#[test]
fn engine_and_pipeline_agree_on_error_cases() {
    let p = pipeline();
    let engine = p.serving_engine().build().expect("engine builds");
    let bogus = p.dataset.graph.n_nodes() + 7;
    assert_eq!(engine.score(&[bogus]), Err(ServeError::UnknownNode(bogus)));
    assert_eq!(
        p.score_transaction(bogus),
        Err(Error::UnknownTransaction(bogus))
    );

    let entity = (0..p.dataset.graph.n_nodes())
        .find(|&v| p.dataset.graph.node_type(v) != NodeType::Txn)
        .expect("graph has entities");
    assert_eq!(
        engine.score(&[entity]),
        Err(ServeError::NotATransaction(entity))
    );
    assert_eq!(
        p.score_transaction(entity),
        Err(Error::NotATransaction(entity))
    );
}
