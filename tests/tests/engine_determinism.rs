//! The batch engine's headline guarantee, asserted end-to-end: the
//! `num_workers` knob trades wall-clock for cores and *nothing else*.
//! Training history, learned weights, and held-out scores of a full
//! `Pipeline::run` must be bit-identical whether batches are sampled
//! inline or by eight background threads.

use xfraud::gnn::{Model, TrainConfig};
use xfraud::{Pipeline, PipelineConfig};

#[test]
fn pipeline_is_bit_identical_across_worker_counts() {
    let run = |workers: usize| {
        let cfg = PipelineConfig::builder()
            .train(TrainConfig {
                epochs: 2,
                num_workers: workers,
                ..TrainConfig::default()
            })
            .build()
            .expect("valid config");
        Pipeline::run(cfg).expect("pipeline trains")
    };
    let base = run(1);
    let (base_scores, base_labels) = base.test_scores();
    for workers in [2usize, 4, 8] {
        let p = run(workers);
        assert_eq!(
            base.detector.store().max_param_diff(p.detector.store()),
            0.0,
            "{workers} workers: weights diverged"
        );
        assert_eq!(base.history.len(), p.history.len(), "{workers} workers");
        for (a, b) in base.history.iter().zip(&p.history) {
            assert_eq!(
                a.mean_loss, b.mean_loss,
                "{workers} workers, epoch {}",
                a.epoch
            );
            assert_eq!(a.val_auc, b.val_auc, "{workers} workers, epoch {}", a.epoch);
        }
        let (scores, labels) = p.test_scores();
        assert_eq!(
            base_scores, scores,
            "{workers} workers: test scores diverged"
        );
        assert_eq!(base_labels, labels, "{workers} workers");
    }
}
